//! The greedy algorithm for selecting materialized views and indices (§6).
//!
//! Implements Figure 2 of the paper: starting from `X = V` (the user views),
//! repeatedly pick the candidate `x` with the highest
//! `benefit(x, X) = cost(X, X) − cost(X ∪ {x}, X ∪ {x})` and materialize it,
//! stopping when no candidate has positive benefit. Candidates are full
//! results, differential results, and indices (on base tables and on
//! materialized results).
//!
//! Two optimizations from \[RSSB00\], §6.2:
//!
//! 1. **Incremental cost update** — benefit evaluation *trials* the
//!    candidate in the cost engine, which recomputes only ancestors' memo
//!    slots and records an undo log; rejection rolls back in O(changes).
//! 2. **Monotonicity** — benefits are kept in a lazy max-heap; a popped
//!    candidate's benefit is re-evaluated, and accepted immediately if it
//!    still beats the best *stale* benefit below it, avoiding the quadratic
//!    re-evaluation of every candidate each round.

use crate::dag::{Dag, EqId, OpKind, SemKey};
use crate::opt::costing::{CostEngine, StoredRef};
use crate::update::UpdateId;
use mvmqo_relalg::schema::AttrId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::{HashMap, HashSet};

/// What the greedy loop may materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Candidate {
    /// Full result of an equivalence node.
    Full(EqId),
    /// Differential result δ(e, u) (temporary by definition — differentials
    /// of base updates cannot be materialized permanently, §1).
    Diff(EqId, UpdateId),
    /// Index on a stored relation.
    Index(StoredRef, AttrId),
}

/// Optimizer operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The paper's algorithm: greedy selection of extra materializations.
    #[default]
    Greedy,
    /// Baseline: plain Volcano extended to choose between recomputation and
    /// incremental maintenance per view (the class containing Vista
    /// \[Vis98\]) — no extra materializations, no extra indices.
    NoGreedy,
}

/// Knobs for the greedy loop (defaults reproduce the paper's configuration).
#[derive(Debug, Clone, Copy)]
pub struct GreedyOptions {
    pub mode: Mode,
    /// Consider differential results as candidates. The paper's
    /// implementation considered only full results (§7: "our current
    /// implementation has a restriction..."); enabling this is the
    /// completed version the paper describes as forthcoming.
    pub diff_candidates: bool,
    /// Consider index candidates (§4.3 / Figure 5(b)).
    pub index_candidates: bool,
    /// The monotonicity optimization (§6.2, optimization 2).
    pub monotonicity: bool,
    /// The incremental cost update (§6.2, optimization 1); disabled =
    /// recompute the whole memo per benefit evaluation (ablation).
    pub incremental_cost_update: bool,
    /// Optional storage budget in blocks; when set, candidates are ranked
    /// by benefit per block and skipped once the budget is exhausted
    /// (§6.2's final remark).
    pub space_budget_blocks: Option<f64>,
    /// Hard cap on greedy iterations (defensive).
    pub max_selections: usize,
    /// Debug mode: after every committed pick, cross-check the incremental
    /// cost update against a full memo recompute and panic on divergence.
    /// Expensive — meant for tests (the property suite enables it).
    pub audit_incremental: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            mode: Mode::Greedy,
            diff_candidates: false,
            index_candidates: true,
            monotonicity: true,
            incremental_cost_update: true,
            space_budget_blocks: None,
            max_selections: 10_000,
            audit_incremental: false,
        }
    }
}

/// Result of the greedy selection.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Candidates chosen, in selection order, with the benefit observed at
    /// selection time.
    pub chosen: Vec<(Candidate, f64)>,
    /// cost(V, V): total maintenance cost before any extra materialization.
    pub initial_cost: f64,
    /// cost(X, X) after selection.
    pub final_cost: f64,
    /// Number of benefit evaluations performed (the quantity the
    /// monotonicity optimization reduces).
    pub benefit_evaluations: usize,
    /// Blocks of storage consumed by chosen materializations.
    pub space_used_blocks: f64,
}

/// Warm-start context for a re-entrant optimizer session (\[AS26\]-style
/// local search seeded from the previous solution).
///
/// At entry to [`run_greedy_warm`] the engine's `MatSet` still contains the
/// previous plan's extra materializations (`prior_chosen`). The run first
/// *revalidates* that selection — each prior pick whose removal now lowers
/// total cost is demoted back into the candidate pool — then runs the lazy
/// greedy loop, seeding the benefit heap with `benefits` cached from the
/// previous run for every candidate outside `stale`. Because the lazy loop
/// re-evaluates a candidate before committing it, a stale seed costs at
/// most one extra evaluation; what it saves is the full initial
/// benefit-evaluation sweep, the dominant term of optimization time on
/// large view sets.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Extra materializations chosen by the previous plan, still present in
    /// the engine's `MatSet`.
    pub prior_chosen: Vec<Candidate>,
    /// Last fresh benefit observed per candidate (updated in place).
    pub benefits: HashMap<Candidate, f64>,
    /// Eq nodes whose cost context changed since `benefits` was cached —
    /// the *downward closure* of every changed node (a candidate's benefit
    /// flows through its ancestors, so it is stale exactly when a changed
    /// node sits above it). `None` means no warm information: every
    /// candidate is evaluated fresh (the cold path).
    pub stale: Option<HashSet<EqId>>,
}

impl WarmStart {
    /// The set of anchors whose cached benefit cannot be trusted: the
    /// changed nodes plus everything below them.
    pub fn stale_closure(dag: &Dag, changed: impl IntoIterator<Item = EqId>) -> HashSet<EqId> {
        let mut out: HashSet<EqId> = HashSet::new();
        let mut stack: Vec<EqId> = changed.into_iter().collect();
        while let Some(e) = stack.pop() {
            if !out.insert(e) {
                continue;
            }
            for &op in &dag.eq(e).children {
                for &c in &dag.op(op).children {
                    if !out.contains(&c) {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// The eq node a candidate's benefit is anchored at.
    fn anchor(engine: &CostEngine<'_>, cand: Candidate) -> Option<EqId> {
        match cand {
            Candidate::Full(e) | Candidate::Diff(e, _) | Candidate::Index(StoredRef::Mat(e), _) => {
                Some(e)
            }
            Candidate::Index(StoredRef::Base(t), _) => engine.dag.base_eq(t),
        }
    }

    /// Must this candidate be fresh-evaluated at heap build?
    fn is_stale(&self, engine: &CostEngine<'_>, cand: Candidate) -> bool {
        if !self.benefits.contains_key(&cand) {
            return true;
        }
        match &self.stale {
            None => true,
            Some(set) => Self::anchor(engine, cand).is_none_or(|e| set.contains(&e)),
        }
    }
}

/// Run the greedy selection over an initialized cost engine whose `mats`
/// already contain the user views (and pre-existing indices).
pub fn run_greedy(engine: &mut CostEngine<'_>, options: &GreedyOptions) -> GreedyResult {
    run_greedy_warm(engine, options, &mut WarmStart::default())
}

/// [`run_greedy`] with a warm-start context; the cold path is the same
/// function with an empty context.
pub fn run_greedy_warm(
    engine: &mut CostEngine<'_>,
    options: &GreedyOptions,
    warm: &mut WarmStart,
) -> GreedyResult {
    engine.incremental = options.incremental_cost_update;
    let trace0 = std::env::var_os("MVMQO_GREEDY_TRACE").is_some();
    let tinit = std::time::Instant::now();
    let prior: Vec<Candidate> = std::mem::take(&mut warm.prior_chosen)
        .into_iter()
        .filter(|c| candidate_live(engine, *c))
        .collect();

    let entry_total = engine.total_cost();
    let mut result = GreedyResult {
        chosen: Vec::new(),
        initial_cost: entry_total,
        final_cost: entry_total,
        benefit_evaluations: 0,
        space_used_blocks: 0.0,
    };
    if options.mode == Mode::NoGreedy {
        // Baseline never materializes extras; demote anything inherited.
        for &cand in prior.iter().rev() {
            let _ = apply(engine, cand, false);
        }
        let bare = engine.total_cost();
        result.initial_cost = bare;
        result.final_cost = bare;
        return result;
    }

    // Revalidate the inherited selection: a prior pick is kept exactly when
    // removing it would not lower total cost; its current benefit is the
    // cost increase its removal would cause (differenced locally, like
    // every other benefit evaluation). A pick whose whole cost context is
    // clean keeps its cached keep-benefit without paying a trial.
    //
    // `initial_cost` (the NoGreedy baseline, cost(V, V)) is reported as the
    // additive estimate `entry_total ± the measured per-pick deltas`; with
    // a prior selection in place the joint-removal measurement would cost
    // one propagation per pick for a purely informational figure. Cold runs
    // (no prior) report it exactly.
    let mut baseline = entry_total;
    for cand in prior {
        let keep_benefit = if warm.is_stale(engine, cand) {
            -evaluate_benefit_toggle(engine, cand, false, &mut result)
        } else {
            warm.benefits[&cand]
        };
        if keep_benefit < -1e-9 {
            // The changed problem no longer justifies it: demote (it
            // re-enters the candidate pool below).
            let _ = apply(engine, cand, false);
            baseline += keep_benefit; // demotion lowered the running total
            warm.benefits.remove(&cand);
        } else {
            baseline += keep_benefit; // what removing it would have added
            warm.benefits.insert(cand, keep_benefit);
            result.space_used_blocks += candidate_blocks(engine, cand);
            result.chosen.push((cand, keep_benefit));
        }
    }
    result.initial_cost = baseline;

    let trace = trace0;
    if trace {
        eprintln!(
            "greedy: initial+revalidate ({} prior) took {:?}",
            result.chosen.len(),
            tinit.elapsed()
        );
    }
    let t0 = std::time::Instant::now();
    let mut candidates = enumerate_candidates(engine, options);
    if trace {
        eprintln!(
            "greedy: {} candidates enumerated in {:?} ({} prior kept)",
            candidates.len(),
            t0.elapsed(),
            result.chosen.len()
        );
    }

    if options.monotonicity {
        // Lazy greedy: heap of (stale benefit, candidate index). Warm runs
        // seed clean candidates from the cached benefits without paying an
        // evaluation; the pop-time re-evaluation keeps the loop honest.
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        for (i, &cand) in candidates.iter().enumerate() {
            let b = if warm.is_stale(engine, cand) {
                match warm.benefits.get(&cand) {
                    // A stale-but-positive cache entry is a fine lazy seed:
                    // the loop fresh-evaluates every entry before either
                    // committing it or letting it gate termination, so only
                    // its heap *position* is approximate.
                    Some(&cached) if cached > 1e-9 => cached,
                    _ => {
                        let fresh = evaluate_benefit(engine, cand, &mut result);
                        warm.benefits.insert(cand, fresh);
                        fresh
                    }
                }
            } else {
                warm.benefits[&cand]
            };
            if b.is_finite() {
                heap.push(HeapEntry { benefit: b, idx: i });
            }
        }
        if trace {
            eprintln!(
                "greedy: heap built at {:?} ({} evals so far)",
                t0.elapsed(),
                result.benefit_evaluations
            );
        }
        let mut selected: HashSet<usize> = HashSet::new();
        while let Some(top) = heap.pop() {
            if result.chosen.len() >= options.max_selections {
                break;
            }
            if selected.contains(&top.idx) {
                continue;
            }
            let cand = candidates[top.idx];
            let fresh = evaluate_benefit(engine, cand, &mut result);
            warm.benefits.insert(cand, fresh);
            let next_stale = heap.peek().map(|e| e.benefit).unwrap_or(f64::NEG_INFINITY);
            if fresh >= next_stale - 1e-9 {
                // Monotonicity: no stale entry can beat this fresh value.
                if fresh <= 1e-9 {
                    break; // Figure 2: stop when max benefit is non-positive
                }
                if !fits_budget(engine, cand, options, &mut result) {
                    selected.insert(top.idx); // skipped for good: over budget
                    continue;
                }
                commit(engine, cand, options);
                selected.insert(top.idx);
                result.chosen.push((cand, fresh));
            } else {
                heap.push(HeapEntry {
                    benefit: fresh,
                    idx: top.idx,
                });
            }
        }
    } else {
        // Plain greedy: re-evaluate every remaining candidate each round.
        loop {
            if result.chosen.len() >= options.max_selections {
                break;
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, &cand) in candidates.iter().enumerate() {
                let b = evaluate_benefit(engine, cand, &mut result);
                warm.benefits.insert(cand, b);
                if b.is_finite() && best.map(|(_, bb)| b > bb).unwrap_or(true) {
                    best = Some((i, b));
                }
            }
            match best {
                Some((i, b)) if b > 1e-9 => {
                    let cand = candidates.remove(i);
                    if !fits_budget(engine, cand, options, &mut result) {
                        continue;
                    }
                    commit(engine, cand, options);
                    result.chosen.push((cand, b));
                }
                _ => break,
            }
        }
    }
    if trace {
        eprintln!(
            "greedy: loop done at {:?} ({} evals, {} chosen)",
            t0.elapsed(),
            result.benefit_evaluations,
            result.chosen.len()
        );
    }
    result.final_cost = engine.total_cost();
    warm.prior_chosen = result.chosen.iter().map(|(c, _)| *c).collect();
    result
}

/// Is this candidate still meaningful on the current (live) DAG?
fn candidate_live(engine: &CostEngine<'_>, cand: Candidate) -> bool {
    WarmStart::anchor(engine, cand).is_some_and(|e| engine.dag.eq_is_live(e))
}

/// Evaluate `benefit(x, M)` by trialing the materialization and rolling it
/// back: `cost(M, M) − cost(M ∪ {x}, M ∪ {x})`.
///
/// The totals are differenced only over the nodes the trial's incremental
/// propagation actually touched (plus the candidate's own anchor) — every
/// other member's contribution is identical on both sides and cancels, so
/// one evaluation costs O(changed slots), not O(all materializations).
fn evaluate_benefit(
    engine: &mut CostEngine<'_>,
    cand: Candidate,
    result: &mut GreedyResult,
) -> f64 {
    evaluate_benefit_toggle(engine, cand, true, result)
}

/// Benefit of toggling `cand` to `on` (rolled back): cost before the
/// toggle minus cost after it, differenced over the affected set only.
fn evaluate_benefit_toggle(
    engine: &mut CostEngine<'_>,
    cand: Candidate,
    on: bool,
    result: &mut GreedyResult,
) -> f64 {
    result.benefit_evaluations += 1;
    let trial = apply(engine, cand, on);
    let mut affected: HashSet<EqId> = trial.changed_eqs().collect();
    if let Some(a) = WarmStart::anchor(engine, cand) {
        affected.insert(a);
    }
    let index = match cand {
        Candidate::Index(t, a) => Some((t, a)),
        _ => None,
    };
    let after = engine.partial_cost(&affected, index);
    engine.rollback(trial);
    let before = engine.partial_cost(&affected, index);
    before - after
}

fn apply(engine: &mut CostEngine<'_>, cand: Candidate, on: bool) -> crate::opt::costing::Trial {
    match cand {
        Candidate::Full(e) => engine.set_full_mat(e, on),
        Candidate::Diff(e, u) => engine.set_diff_mat(e, u, on),
        Candidate::Index(t, a) => engine.set_index(t, a, on),
    }
}

fn commit(engine: &mut CostEngine<'_>, cand: Candidate, options: &GreedyOptions) {
    let _ = apply(engine, cand, true);
    if options.audit_incremental {
        engine.assert_consistent_with_recompute();
    }
}

/// Storage accounting against the optional space budget.
fn fits_budget(
    engine: &CostEngine<'_>,
    cand: Candidate,
    options: &GreedyOptions,
    result: &mut GreedyResult,
) -> bool {
    let blocks = candidate_blocks(engine, cand);
    match options.space_budget_blocks {
        Some(budget) if result.space_used_blocks + blocks > budget => false,
        _ => {
            result.space_used_blocks += blocks;
            true
        }
    }
}

/// Estimated blocks a chosen candidate occupies.
pub fn candidate_blocks(engine: &CostEngine<'_>, cand: Candidate) -> f64 {
    match cand {
        Candidate::Full(e) => {
            let st = engine.props.new_state(e);
            engine.model.blocks(st.rows, engine.width(e))
        }
        Candidate::Diff(e, u) => {
            let d = engine.props.delta(e, u);
            engine.model.blocks(d.rows, engine.width(e))
        }
        Candidate::Index(target, _) => {
            let rows = match target {
                StoredRef::Base(t) => engine.catalog.table(t).stats.rows,
                StoredRef::Mat(e) => engine.props.new_state(e).rows,
            };
            engine.model.blocks(rows, 16)
        }
    }
}

/// Enumerate the candidate set handed to Figure 2's procedure.
pub fn enumerate_candidates(engine: &CostEngine<'_>, options: &GreedyOptions) -> Vec<Candidate> {
    let dag = engine.dag;
    let mut out = Vec::new();
    // Cap pathological full candidates (pure cross products blow up the
    // benefit evaluation for no possible gain; the paper notes candidate
    // pruning as the lever for optimization time).
    let base_blocks: f64 = dag
        .base_tables()
        .iter()
        .map(|t| {
            let def = engine.catalog.table(*t);
            engine.model.blocks(def.stats.rows, def.schema.row_width())
        })
        .sum();
    let block_cap = (base_blocks * 4.0).max(1024.0);

    let is_root = |e: EqId| dag.roots().iter().any(|r| r.eq == e);
    for e in dag.eq_ids() {
        let node = dag.eq(e);
        if node.is_base_relation() {
            continue;
        }
        let st = engine.props.new_state(e);
        if engine.model.blocks(st.rows, engine.width(e)) > block_cap {
            continue;
        }
        let materialized = engine.mats.full.contains(&e);
        if !materialized {
            out.push(Candidate::Full(e));
            if options.index_candidates && !engine.is_grouped(e) {
                // Locator index for delete-merges, should this node be
                // chosen and maintained.
                if let Some(first) = node.schema.ids().first() {
                    out.push(Candidate::Index(StoredRef::Mat(e), *first));
                }
            }
        }
        // Differential candidates are meaningful whether or not the full
        // result is currently materialized — a warm replan inherits the
        // prior selection into `mats.full` before enumeration, and kept
        // extras must keep the same candidate space a cold run would give
        // them. User-view roots never enumerate diffs (matching the cold
        // path, where they are in `mats.full` from the start).
        if options.diff_candidates && !engine.is_grouped(e) && !(materialized && is_root(e)) {
            // Grouped (aggregate/distinct) deltas are merge records, not
            // relations; they are applied directly, never stored.
            for step in engine.updates.steps() {
                if !engine.props.delta_is_empty(e, step.id)
                    && !engine.mats.diffs.contains(&(e, step.id))
                {
                    out.push(Candidate::Diff(e, step.id));
                }
            }
        }
    }
    if options.index_candidates {
        // Locator indices for the user views themselves.
        for &e in &engine.mats.full {
            if !engine.is_grouped(e) {
                if let Some(first) = dag.eq(e).schema.ids().first() {
                    let cand = Candidate::Index(StoredRef::Mat(e), *first);
                    if !engine.mats.has_index(StoredRef::Mat(e), *first) {
                        out.push(cand);
                    }
                }
            }
        }
        out.extend(enumerate_index_candidates(engine));
    }
    out.sort_by_key(|c| match c {
        Candidate::Full(e) => (0u8, e.0, 0u16, 0u32),
        Candidate::Diff(e, u) => (1, e.0, u.0, 0),
        Candidate::Index(StoredRef::Base(t), a) => (2, t.0, 0, a.0),
        Candidate::Index(StoredRef::Mat(e), a) => (3, e.0, 0, a.0),
    });
    out.dedup();
    out
}

/// Index candidates: for every join op, an index on each side's join key
/// when that side is (or could become) a stored relation; plus sargable
/// selection attributes on base tables.
fn enumerate_index_candidates(engine: &CostEngine<'_>) -> Vec<Candidate> {
    let dag = engine.dag;
    let mut seen: HashSet<(StoredRef, AttrId)> = HashSet::new();
    let mut out = Vec::new();
    let mut push = |target: StoredRef, attr: AttrId, engine: &CostEngine<'_>| {
        if engine.mats.has_index(target, attr) {
            return; // already present (e.g. pre-existing PK index)
        }
        if seen.insert((target, attr)) {
            out.push(Candidate::Index(target, attr));
        }
    };
    for op_id in dag.op_ids() {
        let op = dag.op(op_id);
        match &op.kind {
            OpKind::Join { pred } => {
                for (a, b) in pred.equijoin_keys() {
                    for (side, attr) in [
                        (op.children[0], a),
                        (op.children[0], b),
                        (op.children[1], a),
                        (op.children[1], b),
                    ] {
                        let node = dag.eq(side);
                        if node.schema.position_of(attr).is_none() {
                            continue;
                        }
                        if let Some(t) = node.as_base_table() {
                            push(StoredRef::Base(t), attr, engine);
                        } else if let SemKey::Spj { tables, .. } = &node.key {
                            if tables.len() == 1 {
                                // Selection over a base: probe the base.
                                push(StoredRef::Base(tables[0]), attr, engine);
                            } else {
                                push(StoredRef::Mat(side), attr, engine);
                            }
                        } else {
                            push(StoredRef::Mat(side), attr, engine);
                        }
                    }
                }
            }
            OpKind::Select { pred } => {
                let child = op.children[0];
                if let Some(t) = dag.eq(child).as_base_table() {
                    for c in pred.conjuncts() {
                        let single = mvmqo_relalg::expr::Predicate::from_conjuncts(vec![c.clone()]);
                        if let Some((attr, _, _)) = single.as_single_attr_range() {
                            push(StoredRef::Base(t), attr, engine);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Post-selection classification: how each materialized full result is
/// refreshed (the temporary-vs-permanent decision of §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshStrategy {
    /// Maintenance cost won: keep permanently, apply differentials.
    Incremental,
    /// Recomputation won: for user views, refresh by recomputation; for
    /// extra results, materialize temporarily during maintenance and
    /// discard afterwards.
    Recompute,
}

/// Classify every materialized full result under the final `M`.
pub fn classify_refresh(engine: &CostEngine<'_>) -> Vec<(EqId, RefreshStrategy, f64)> {
    let mut out: Vec<(EqId, RefreshStrategy, f64)> = engine
        .mats
        .full
        .iter()
        .map(|&e| {
            let (cost, incremental) = engine.cost_full_result(e);
            let strat = if incremental {
                RefreshStrategy::Incremental
            } else {
                RefreshStrategy::Recompute
            };
            (e, strat, cost)
        })
        .collect();
    out.sort_by_key(|(e, _, _)| *e);
    out
}

/// Convenience: how a chosen plan element reads for humans.
pub fn describe_candidate(dag: &Dag, cand: Candidate) -> String {
    match cand {
        Candidate::Full(e) => format!("materialize full result of {e} ({})", key_desc(dag, e)),
        Candidate::Diff(e, u) => format!("materialize differential δ({e}, {u})"),
        Candidate::Index(StoredRef::Base(t), a) => format!("index on base {t}({a})"),
        Candidate::Index(StoredRef::Mat(e), a) => format!("index on materialized {e}({a})"),
    }
}

fn key_desc(dag: &Dag, e: EqId) -> String {
    match &dag.eq(e).key {
        SemKey::Spj { tables, preds } => {
            let ts: Vec<String> = tables.iter().map(|t| t.to_string()).collect();
            if preds.is_true() {
                format!("⋈{{{}}}", ts.join(","))
            } else {
                format!("σ[{preds}]⋈{{{}}}", ts.join(","))
            }
        }
        SemKey::Derived { sig, .. } => format!("{sig:?}").chars().take(40).collect(),
    }
}

/// Required by BinaryHeap: max-heap by stale benefit.
struct HeapEntry {
    benefit: f64,
    idx: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.benefit == other.benefit && self.idx == other.idx
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.benefit
            .total_cmp(&other.benefit)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::opt::costing::MatSet;
    use crate::update::UpdateModel;
    use mvmqo_relalg::catalog::{Catalog, ColumnSpec, TableId};
    use mvmqo_relalg::expr::{Predicate, ScalarExpr};
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    struct Fixture {
        catalog: Catalog,
        dag: Dag,
        roots: Vec<EqId>,
        tables: Vec<TableId>,
    }

    /// Two views sharing B⋈C — the paper's Example 3.1 shape.
    fn shared_fixture() -> Fixture {
        let mut catalog = Catalog::new();
        let a = catalog.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            100_000.0,
            &["id"],
        );
        let b = catalog.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 100_000.0),
                ColumnSpec::with_range("x", DataType::Int, 100.0, (0.0, 100.0)),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            500_000.0,
            &["id"],
        );
        let c = catalog.add_table(
            "c",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 500_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            2_000_000.0,
            &["id"],
        );
        let d = catalog.add_table(
            "d",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 500_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            750_000.0,
            &["id"],
        );
        catalog.add_foreign_key(b, &["a_id"], a);
        catalog.add_foreign_key(c, &["b_id"], b);
        catalog.add_foreign_key(d, &["b_id"], b);
        let a_id = catalog.table(a).attr("id");
        let b_aid = catalog.table(b).attr("a_id");
        let b_id = catalog.table(b).attr("id");
        let b_x = catalog.table(b).attr("x");
        let c_bid = catalog.table(c).attr("b_id");
        let d_bid = catalog.table(d).attr("b_id");
        // Shared, *selective* subexpression σ_{x<5}(B) ⋈ C — the Example 3.1
        // shape that makes temporary/permanent materialization worthwhile.
        let bc = LogicalExpr::join(
            LogicalExpr::select(
                LogicalExpr::scan(b),
                Predicate::from_expr(ScalarExpr::col_cmp_lit(
                    b_x,
                    mvmqo_relalg::expr::CmpOp::Lt,
                    5i64,
                )),
            ),
            LogicalExpr::scan(c),
            Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        );
        let v1 = LogicalExpr::Join {
            left: LogicalExpr::scan(a),
            right: bc.clone(),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        };
        let v2 = LogicalExpr::Join {
            left: bc,
            right: LogicalExpr::scan(d),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, d_bid)),
        };
        let mut dag = Dag::new();
        let r1 = dag.insert_view(&catalog, "v1", &v1);
        let r2 = dag.insert_view(&catalog, "v2", &v2);
        Fixture {
            catalog,
            dag,
            roots: vec![r1, r2],
            tables: vec![a, b, c, d],
        }
    }

    fn make_engine<'x>(f: &'x Fixture, updates: &'x UpdateModel) -> CostEngine<'x> {
        let mut mats = MatSet::default();
        mats.full.extend(f.roots.iter().copied());
        for t in &f.tables {
            mats.indices
                .insert((StoredRef::Base(*t), f.catalog.table(*t).primary_key[0]));
        }
        CostEngine::new(&f.dag, &f.catalog, updates, CostModel::default(), mats)
    }

    #[test]
    fn greedy_never_increases_cost() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 10.0, |t| f.catalog.table(t).stats.rows);
        let mut engine = make_engine(&f, &updates);
        let res = run_greedy(&mut engine, &GreedyOptions::default());
        assert!(res.final_cost <= res.initial_cost + 1e-6);
        for (_, b) in &res.chosen {
            assert!(*b > 0.0);
        }
    }

    #[test]
    fn greedy_beats_nogreedy_at_low_update_rate() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 1.0, |t| f.catalog.table(t).stats.rows);
        let mut engine = make_engine(&f, &updates);
        let greedy = run_greedy(&mut engine, &GreedyOptions::default());
        // NoGreedy = the initial cost (no extra materializations).
        assert!(
            greedy.final_cost < greedy.initial_cost * 0.95,
            "greedy {} vs nogreedy {}",
            greedy.final_cost,
            greedy.initial_cost
        );
        assert!(!greedy.chosen.is_empty());
    }

    #[test]
    fn monotonicity_reduces_benefit_evaluations_and_agrees() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 5.0, |t| f.catalog.table(t).stats.rows);
        let mut e1 = make_engine(&f, &updates);
        let lazy = run_greedy(&mut e1, &GreedyOptions::default());
        let mut e2 = make_engine(&f, &updates);
        let eager = run_greedy(
            &mut e2,
            &GreedyOptions {
                monotonicity: false,
                ..Default::default()
            },
        );
        // Same final cost (up to ties); the evaluation saving appears once
        // the loop runs multiple rounds (eager re-evaluates every candidate
        // per round, lazy only re-checks heap tops).
        assert!((lazy.final_cost - eager.final_cost).abs() < eager.final_cost * 0.05 + 1e-6);
        if eager.chosen.len() >= 2 {
            assert!(
                lazy.benefit_evaluations < eager.benefit_evaluations,
                "lazy {} vs eager {} over {} selections",
                lazy.benefit_evaluations,
                eager.benefit_evaluations,
                eager.chosen.len()
            );
        }
    }

    #[test]
    fn nogreedy_mode_selects_nothing() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 5.0, |t| f.catalog.table(t).stats.rows);
        let mut engine = make_engine(&f, &updates);
        let res = run_greedy(
            &mut engine,
            &GreedyOptions {
                mode: Mode::NoGreedy,
                ..Default::default()
            },
        );
        assert!(res.chosen.is_empty());
        assert_eq!(res.initial_cost, res.final_cost);
    }

    #[test]
    fn space_budget_limits_selection() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 1.0, |t| f.catalog.table(t).stats.rows);
        let mut engine = make_engine(&f, &updates);
        let unlimited = run_greedy(&mut engine, &GreedyOptions::default());
        let mut engine2 = make_engine(&f, &updates);
        let tiny = run_greedy(
            &mut engine2,
            &GreedyOptions {
                space_budget_blocks: Some(1.0),
                ..Default::default()
            },
        );
        assert!(tiny.space_used_blocks <= 1.0 + 1e-9);
        assert!(tiny.chosen.len() <= unlimited.chosen.len());
    }

    #[test]
    fn diff_candidates_can_be_enabled() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 5.0, |t| f.catalog.table(t).stats.rows);
        let engine = make_engine(&f, &updates);
        let base = enumerate_candidates(&engine, &GreedyOptions::default());
        let with_diffs = enumerate_candidates(
            &engine,
            &GreedyOptions {
                diff_candidates: true,
                ..Default::default()
            },
        );
        assert!(with_diffs.len() > base.len());
        assert!(with_diffs
            .iter()
            .any(|c| matches!(c, Candidate::Diff(_, _))));
    }

    #[test]
    fn classification_separates_temp_and_perm() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 5.0, |t| f.catalog.table(t).stats.rows);
        let mut engine = make_engine(&f, &updates);
        let _ = run_greedy(&mut engine, &GreedyOptions::default());
        let classified = classify_refresh(&engine);
        assert_eq!(classified.len(), engine.mats.full.len());
        for (_, _, cost) in &classified {
            assert!(cost.is_finite());
        }
    }

    #[test]
    fn index_candidates_enumerated_for_join_keys() {
        let f = shared_fixture();
        let updates =
            UpdateModel::percentage(f.tables.clone(), 5.0, |t| f.catalog.table(t).stats.rows);
        let engine = make_engine(&f, &updates);
        let cands = enumerate_candidates(&engine, &GreedyOptions::default());
        // b.a_id is a join key without a pre-existing index → must be a
        // candidate.
        let b_aid = f.catalog.table(f.tables[1]).attr("a_id");
        assert!(cands
            .iter()
            .any(|c| matches!(c, Candidate::Index(StoredRef::Base(t), a)
                if *t == f.tables[1] && *a == b_aid)));
    }

    #[test]
    fn describe_candidate_is_humane() {
        let f = shared_fixture();
        let desc = describe_candidate(&f.dag, Candidate::Full(f.roots[0]));
        assert!(desc.contains("materialize"));
    }
}
