//! The optimizer: Volcano-style best-plan search with materialized results
//! (§5.1), differential plan costing (§5.3), and greedy selection of extra
//! materializations and indices with the incremental-cost-update and
//! monotonicity optimizations (§6).

pub mod costing;
pub mod greedy;

pub use costing::{Alg, CostEngine, EngineStats, MatSet, SavedMemo, Slot, StoredRef, Trial};
pub use greedy::{
    candidate_blocks, classify_refresh, describe_candidate, enumerate_candidates, run_greedy,
    run_greedy_warm, Candidate, GreedyOptions, GreedyResult, Mode, RefreshStrategy, WarmStart,
};
