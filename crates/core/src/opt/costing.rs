//! The cost engine: best plans for full results and differentials given a
//! set of materialized results, with incremental cost update.
//!
//! Implements the recurrences of §5.1 and §5.3:
//!
//! ```text
//! compcost(o, M)   = local cost of o + Σ C(child, M)
//! C(e, M)          = e ∈ M ? min(reusecost(e), compcost(e, M)) : compcost(e, M)
//! diffCost(o,M,i)  = localDiffCost(o,i) + Σ_{diffChildren} Cdiff(c,M,i)
//!                                        + Σ_{fullChildren} C(c, M)
//! Cdiff(e,M,i)     = δ(e,i) ∈ M ? min(reusecost(δ), diffCost(e,M,i)) : diffCost(e,M,i)
//! ```
//!
//! and the maintenance costs of §6.1:
//!
//! ```text
//! maintcost(n,M) = Σᵢ Cdiff(n,M,i) + mergeCost(n)
//! cost(full n,M) = min(compcost(n,M) + matcost(n), maintcost(n,M))
//! cost(δ(n,i),M) = diffCost(n,M,i) + matcost(δ(n,i))
//! ```
//!
//! Physical algorithm selection (hash/merge/nested-loop/index-nested-loop
//! joins, index selections) happens inside the per-op costing, with index
//! availability read from the current materialized set — this is how index
//! selection rides along with view selection (§4.3, §7).
//!
//! The engine supports **incremental cost update** (§6.2, optimization 1):
//! toggling the materialization of a result recomputes best plans only for
//! ancestors of that result, stopping as soon as costs stop changing;
//! full-result changes invalidate ancestors' full and differential slots,
//! differential changes only the matching differential slot. Every change
//! is recorded in an undo log so a candidate can be *trialed* and rolled
//! back in O(changed nodes).

use crate::cost::CostModel;
use crate::dag::{Dag, EqId, OpId, OpKind, SemKey};
use crate::diff::DiffProps;
use crate::update::{UpdateId, UpdateModel};
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::expr::Predicate;
use mvmqo_relalg::schema::AttrId;
use mvmqo_storage::delta::DeltaKind;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A stored relation a plan can probe or scan directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StoredRef {
    /// A base table.
    Base(TableId),
    /// A materialized equivalence node.
    Mat(EqId),
}

/// Physical algorithm chosen for one operation (the AND-node's
/// implementation). Join children roles: `build_left`/`outer` describe the
/// op's canonical child order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alg {
    /// Sequential scan of a base table (Scan op) or of a delta log
    /// (differential of a base relation).
    Scan,
    /// Pipelined filter.
    Filter,
    /// Probe an index on a stored relation for a sargable conjunct, then
    /// apply the residual predicate.
    IndexSelect {
        target: StoredRef,
        attr: AttrId,
    },
    /// Pipelined projection.
    Project,
    /// Hash join; `build_left` says which canonical child is the build side.
    HashJoin {
        build_left: bool,
    },
    /// Sort both inputs, then merge.
    MergeJoin,
    /// Block nested loops (inner materialized).
    BlockNl,
    /// Index nested-loop join: outer side streams, inner side is a stored
    /// relation probed via an index on `inner_key`.
    IndexNl {
        /// True if the op's *left* child is the outer (streaming) side.
        outer_left: bool,
        inner: StoredRef,
        outer_key: AttrId,
        inner_key: AttrId,
    },
    /// Hash aggregation.
    HashAgg,
    /// Multiset union / difference / duplicate elimination.
    Union,
    MinusAlg,
    DistinctAlg,
}

/// The set of materialized results and available indices — the `M` of the
/// paper's formulas, plus index state.
#[derive(Debug, Clone, Default)]
pub struct MatSet {
    pub full: HashSet<EqId>,
    pub diffs: HashSet<(EqId, UpdateId)>,
    pub indices: HashSet<(StoredRef, AttrId)>,
}

impl MatSet {
    pub fn has_index(&self, target: StoredRef, attr: AttrId) -> bool {
        self.indices.contains(&(target, attr))
    }

    /// Number of secondary indices on a stored relation.
    pub fn index_count(&self, target: StoredRef) -> usize {
        self.indices.iter().filter(|(t, _)| *t == target).count()
    }
}

/// Which memo slot changed (undo-log granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    Full,
    Diff(UpdateId),
}

#[derive(Debug, Clone)]
struct SlotState {
    cost: f64,
    best: Option<(OpId, Alg)>,
}

/// One undo-log entry.
#[derive(Debug, Clone)]
struct Change {
    eq: EqId,
    slot: Slot,
    prev: SlotState,
}

/// An applied-but-revocable materialization toggle.
#[derive(Debug)]
pub struct Trial {
    changes: Vec<Change>,
    mat_undo: MatUndo,
}

impl Trial {
    /// Eq nodes whose memo slots this trial changed — the only places the
    /// configuration's total cost can have moved (benefit evaluation
    /// differences the cost over this set instead of sweeping every
    /// materialization).
    pub fn changed_eqs(&self) -> impl Iterator<Item = EqId> + '_ {
        self.changes.iter().map(|c| c.eq)
    }
}

#[derive(Debug)]
enum MatUndo {
    Full(EqId, bool),
    Diff(EqId, UpdateId, bool),
    Index(StoredRef, AttrId, bool),
}

/// Instrumentation counters (exposed in optimizer reports; the ablation
/// bench compares them across configurations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub full_slot_recomputes: u64,
    pub diff_slot_recomputes: u64,
}

/// The persistable part of a cost engine's memo: best-plan slots for every
/// full result and differential, indexed by eq id. A re-entrant optimizer
/// session extracts this after each plan ([`CostEngine::into_memo`]) and
/// resumes from it on the next one ([`CostEngine::resume`]), so a replan
/// pays only for the slots its changes actually dirtied instead of a full
/// `recompute_all`. Tombstoned ids carry stale values that are never read.
#[derive(Debug, Clone, Default)]
pub struct SavedMemo {
    full: Vec<SlotState>,
    diff: Vec<Vec<SlotState>>,
    n_updates: usize,
}

/// The cost engine over one DAG.
pub struct CostEngine<'a> {
    pub dag: &'a Dag,
    pub catalog: &'a Catalog,
    pub updates: &'a UpdateModel,
    pub props: DiffProps,
    pub model: CostModel,
    pub mats: MatSet,
    /// If false, incremental cost update is disabled and every trial
    /// recomputes the whole memo (the ablation baseline).
    pub incremental: bool,
    /// Read-only query workload: (root node, executions per refresh cycle).
    /// Each query contributes `weight × C(root, M)` to the total cost, so
    /// the greedy phase balances query speed-up against maintenance cost —
    /// the workload extension of §6.2.
    pub query_workload: Vec<(EqId, f64)>,
    full: Vec<SlotState>,
    diff: Vec<Vec<SlotState>>,
    topo: Vec<EqId>,
    rank: Vec<usize>,
    pub stats: EngineStats,
}

const EPS: f64 = 1e-9;

impl<'a> CostEngine<'a> {
    pub fn new(
        dag: &'a Dag,
        catalog: &'a Catalog,
        updates: &'a UpdateModel,
        model: CostModel,
        initial_mats: MatSet,
    ) -> Self {
        let props = DiffProps::compute(dag, catalog, updates);
        let mut engine = Self::assemble(dag, catalog, updates, model, initial_mats, props, None);
        engine.recompute_all();
        engine
    }

    /// Rebuild an engine from a previous session's memo, recomputing only
    /// the slots of `dirty` nodes and whatever their changes invalidate
    /// upward. Falls back to a full `recompute_all` when the update
    /// numbering changed (the per-node diff arrays are keyed by it).
    /// Returns the engine plus every eq node whose slot values differ from
    /// the saved memo — the set the warm-started greedy must re-cost.
    #[allow(clippy::too_many_arguments)]
    pub fn resume(
        dag: &'a Dag,
        catalog: &'a Catalog,
        updates: &'a UpdateModel,
        model: CostModel,
        mats: MatSet,
        props: DiffProps,
        saved: SavedMemo,
        dirty: &HashSet<EqId>,
    ) -> (Self, Vec<EqId>) {
        let structural = saved.n_updates != updates.len();
        // A dirty set covering most of the DAG (statistics drift touches
        // every dependent node) is recomputed faster by the linear
        // bottom-up sweep than by per-slot queue bookkeeping.
        let blanket = dirty.len() * 3 >= dag.eq_count() * 2;
        let saved = if structural { None } else { Some(saved) };
        let mut engine = Self::assemble(dag, catalog, updates, model, mats, props, saved);
        if structural || blanket {
            engine.recompute_all();
            let all: Vec<EqId> = engine.dag.eq_ids().collect();
            return (engine, all);
        }
        let mut set = DirtySet::new(updates.len());
        for &e in dirty {
            if !dag.eq_is_live(e) {
                continue;
            }
            set.mark_full(e);
            set.mark_all_diffs(e);
        }
        let changes = engine.propagate(set);
        let mut changed: Vec<EqId> = changes.iter().map(|c| c.eq).collect();
        changed.sort_unstable();
        changed.dedup();
        (engine, changed)
    }

    fn assemble(
        dag: &'a Dag,
        catalog: &'a Catalog,
        updates: &'a UpdateModel,
        model: CostModel,
        mats: MatSet,
        props: DiffProps,
        saved: Option<SavedMemo>,
    ) -> Self {
        let topo = dag.topo_order();
        let mut rank = vec![0usize; dag.eq_arena_size()];
        for (i, e) in topo.iter().enumerate() {
            rank[e.0 as usize] = i;
        }
        let n = updates.len();
        let blank = SlotState {
            cost: f64::INFINITY,
            best: None,
        };
        let (mut full, mut diff) = match saved {
            Some(s) => (s.full, s.diff),
            None => (Vec::new(), Vec::new()),
        };
        full.resize(dag.eq_arena_size(), blank.clone());
        diff.resize(dag.eq_arena_size(), vec![blank.clone(); n]);
        for d in &mut diff {
            d.resize(n, blank.clone());
        }
        CostEngine {
            dag,
            catalog,
            updates,
            props,
            model,
            mats,
            incremental: true,
            query_workload: Vec::new(),
            full,
            diff,
            topo,
            rank,
            stats: EngineStats::default(),
        }
    }

    /// Tear the engine down into the state a re-entrant session persists:
    /// the materialized set, the differential properties, and the memo.
    pub fn into_memo(self) -> (MatSet, DiffProps, SavedMemo) {
        let n = self.updates.len();
        (
            self.mats,
            self.props,
            SavedMemo {
                full: self.full,
                diff: self.diff,
                n_updates: n,
            },
        )
    }

    /// Debug cross-check for the incremental cost update: recompute the
    /// whole memo from scratch and panic if any live slot diverges from
    /// what incremental propagation maintained. Enabled per greedy pick by
    /// `GreedyOptions::audit_incremental`.
    pub fn assert_consistent_with_recompute(&mut self) {
        let before_full: Vec<(EqId, f64)> =
            self.dag.eq_ids().map(|e| (e, self.compcost(e))).collect();
        let before_diff: Vec<(EqId, UpdateId, f64)> = self
            .dag
            .eq_ids()
            .flat_map(|e| (0..self.updates.len()).map(move |u| (e, UpdateId(u as u16))))
            .map(|(e, u)| (e, u, self.diffcost(e, u)))
            .collect();
        self.recompute_all();
        for (e, cost) in before_full {
            let truth = self.compcost(e);
            assert!(
                (cost - truth).abs() <= 1e-6 * truth.abs().max(1.0),
                "incremental cost update diverged on full slot {e}: \
                 incremental {cost}, recomputed {truth}"
            );
        }
        for (e, u, cost) in before_diff {
            let truth = self.diffcost(e, u);
            assert!(
                (cost - truth).abs() <= 1e-6 * truth.abs().max(1.0),
                "incremental cost update diverged on diff slot ({e},{u}): \
                 incremental {cost}, recomputed {truth}"
            );
        }
    }

    /// Recompute the entire memo bottom-up (initial pass; also the
    /// non-incremental ablation path).
    pub fn recompute_all(&mut self) {
        let order = self.topo.clone();
        for e in order {
            let full = self.compute_full_slot(e);
            self.full[e.0 as usize] = full;
            for u in 0..self.updates.len() {
                let d = self.compute_diff_slot(e, UpdateId(u as u16));
                self.diff[e.0 as usize][u] = d;
            }
        }
    }

    // ==================================================================
    // Public cost accessors (the paper's C / compcost / diffCost)
    // ==================================================================

    /// compcost(e, M): cheapest way to (re)compute the full result.
    pub fn compcost(&self, e: EqId) -> f64 {
        self.full[e.0 as usize].cost
    }

    /// Best (op, algorithm) for the full result.
    pub fn best_full(&self, e: EqId) -> Option<(OpId, Alg)> {
        self.full[e.0 as usize].best
    }

    /// C(e, M): cost a consumer pays for the full result.
    pub fn c_full(&self, e: EqId) -> f64 {
        let comp = self.compcost(e);
        if self.mats.full.contains(&e) {
            comp.min(self.reuse_full(e))
        } else {
            comp
        }
    }

    /// diffCost(e, M, u): cheapest way to compute δ(e, u).
    pub fn diffcost(&self, e: EqId, u: UpdateId) -> f64 {
        self.diff[e.0 as usize][u.0 as usize].cost
    }

    /// Best (op, algorithm) for δ(e, u).
    pub fn best_diff(&self, e: EqId, u: UpdateId) -> Option<(OpId, Alg)> {
        self.diff[e.0 as usize][u.0 as usize].best
    }

    /// Cdiff(e, M, u): cost a consumer pays for δ(e, u).
    pub fn c_diff(&self, e: EqId, u: UpdateId) -> f64 {
        let d = self.diffcost(e, u);
        if self.mats.diffs.contains(&(e, u)) {
            d.min(self.reuse_delta(e, u))
        } else {
            d
        }
    }

    /// reusecost(e): sequential read of the stored full result.
    pub fn reuse_full(&self, e: EqId) -> f64 {
        let st = self.props.new_state(e);
        self.model.reuse(st.rows, self.width(e))
    }

    /// reusecost(δ(e,u)).
    pub fn reuse_delta(&self, e: EqId, u: UpdateId) -> f64 {
        let d = self.props.delta(e, u);
        self.model.reuse(d.rows, self.width(e))
    }

    /// matcost(e): writing out the full result.
    pub fn matcost_full(&self, e: EqId) -> f64 {
        let st = self.props.new_state(e);
        self.model.materialize(st.rows, self.width(e))
    }

    /// matcost(δ(e,u)).
    pub fn matcost_delta(&self, e: EqId, u: UpdateId) -> f64 {
        let d = self.props.delta(e, u);
        self.model.materialize(d.rows, self.width(e))
    }

    /// mergeCost(e): applying all 2n differentials to the stored result.
    ///
    /// Deletions need a way to *locate* victim rows: grouped results probe
    /// their group table, and indexed results probe an index; a plain result
    /// with no index must be scanned once per delete batch. This is the
    /// mechanism behind §7's index observations (without pre-existing
    /// indices, "all required indices got chosen for permanent
    /// materialization").
    pub fn merge_cost(&self, e: EqId) -> f64 {
        let grouped = self.is_grouped(e);
        let idx_count = self.mats.index_count(StoredRef::Mat(e));
        let has_locator = grouped || idx_count > 0;
        let result_rows = self.props.new_state(e).rows;
        let mut total = 0.0;
        for step in self.updates.steps() {
            let d = self.props.delta(e, step.id);
            if d.rows <= 0.0 {
                continue;
            }
            let (ins, del) = match step.kind {
                DeltaKind::Insert => (d.rows, 0.0),
                DeltaKind::Delete => (0.0, d.rows),
            };
            total += self
                .model
                .merge_into(ins, del, self.width(e), idx_count, grouped);
            if del > 0.0 && !has_locator {
                total += self.model.scan(result_rows, self.width(e));
            }
        }
        total
    }

    /// maintcost(e, M) = Σ Cdiff + mergeCost.
    pub fn maintcost(&self, e: EqId) -> f64 {
        let mut total = self.merge_cost(e);
        for step in self.updates.steps() {
            total += self.c_diff(e, step.id);
        }
        total
    }

    /// cost of a materialized full result: min(recompute + write, maintain).
    /// Returns (cost, incremental_chosen).
    pub fn cost_full_result(&self, e: EqId) -> (f64, bool) {
        let recompute = self.compcost(e) + self.matcost_full(e);
        let maintain = self.maintcost(e);
        if maintain <= recompute {
            (maintain, true)
        } else {
            (recompute, false)
        }
    }

    /// cost of a materialized differential result.
    pub fn cost_diff_result(&self, e: EqId, u: UpdateId) -> f64 {
        self.diffcost(e, u) + self.matcost_delta(e, u)
    }

    /// cost of an index: min(rebuild per refresh, incremental maintenance).
    /// Returns (cost, maintained_incrementally).
    pub fn cost_index(&self, target: StoredRef) -> (f64, bool) {
        let (rows, delta_rows) = match target {
            StoredRef::Base(t) => {
                let def = self.catalog.table(t);
                let (ins, del) = self.updates.table_delta(t);
                (self.updates.rows_after_all(t, def.stats.rows), ins + del)
            }
            StoredRef::Mat(e) => (self.props.new_state(e).rows, self.props.total_delta_rows(e)),
        };
        let width = match target {
            StoredRef::Base(t) => self.catalog.table(t).schema.row_width(),
            StoredRef::Mat(e) => self.width(e),
        };
        let rebuild = self.model.index_build(rows, width);
        let maintain = self.model.index_maintain(delta_rows);
        if maintain <= rebuild {
            (maintain, true)
        } else {
            (rebuild, false)
        }
    }

    /// Total cost of the configuration — cost(M, M) of §6.1 (maintenance of
    /// everything materialized plus index upkeep), plus the weighted cost of
    /// the read-only query workload when one is attached (§6.2's extension
    /// to workloads containing queries).
    pub fn total_cost(&self) -> f64 {
        let mut total = 0.0;
        for &e in &self.mats.full {
            total += self.cost_full_result(e).0;
        }
        for &(e, u) in &self.mats.diffs {
            total += self.cost_diff_result(e, u);
        }
        for &(target, _) in &self.mats.indices {
            total += self.cost_index(target).0;
        }
        for &(root, weight) in &self.query_workload {
            total += weight * self.c_full(root);
        }
        total
    }

    /// Total-cost contribution of the members whose cost can depend on the
    /// listed nodes: materialized full results and differentials anchored
    /// in `affected`, weighted query roots in `affected`, and (when
    /// currently present) the one index named by `index`. Every other
    /// member's contribution is identical on both sides of a trial whose
    /// slot changes lie inside `affected`, so
    /// `partial_cost(before) − partial_cost(after)` equals the full
    /// `total_cost` difference at a fraction of the sweep.
    pub fn partial_cost(
        &self,
        affected: &HashSet<EqId>,
        index: Option<(StoredRef, AttrId)>,
    ) -> f64 {
        let mut total = 0.0;
        for &e in affected {
            if self.mats.full.contains(&e) {
                total += self.cost_full_result(e).0;
            }
        }
        for &(e, u) in &self.mats.diffs {
            if affected.contains(&e) {
                total += self.cost_diff_result(e, u);
            }
        }
        if let Some((target, attr)) = index {
            if self.mats.has_index(target, attr) {
                total += self.cost_index(target).0;
            }
        }
        for &(root, weight) in &self.query_workload {
            if affected.contains(&root) {
                total += weight * self.c_full(root);
            }
        }
        total
    }

    // ==================================================================
    // Materialization toggles with incremental propagation + undo
    // ==================================================================

    /// Materialize / dematerialize a full result, updating affected memo
    /// slots. Returns a [`Trial`] that can be rolled back.
    pub fn set_full_mat(&mut self, e: EqId, on: bool) -> Trial {
        let was = if on {
            !self.mats.full.insert(e)
        } else {
            !self.mats.full.remove(&e)
        };
        debug_assert!(!was, "redundant full-mat toggle on {e}");
        let mut dirty = DirtySet::new(self.updates.len());
        // Ancestors see a changed C(e): full and all differential slots.
        self.mark_parents(e, &mut dirty, true, None);
        // Aggregate/Distinct nodes' own differential cost depends on their
        // own materialization (§3.1.2: deltas of materialized aggregates are
        // cheap; otherwise affected groups must be recomputed).
        if self.is_grouped(e) {
            dirty.mark_all_diffs(e);
        }
        let changes = self.propagate(dirty);
        Trial {
            changes,
            mat_undo: MatUndo::Full(e, on),
        }
    }

    /// Materialize / dematerialize a differential result.
    pub fn set_diff_mat(&mut self, e: EqId, u: UpdateId, on: bool) -> Trial {
        if on {
            self.mats.diffs.insert((e, u));
        } else {
            self.mats.diffs.remove(&(e, u));
        }
        let mut dirty = DirtySet::new(self.updates.len());
        self.mark_parents(e, &mut dirty, false, Some(u));
        let changes = self.propagate(dirty);
        Trial {
            changes,
            mat_undo: MatUndo::Diff(e, u, on),
        }
    }

    /// Add / remove an index, updating plans that could use it.
    pub fn set_index(&mut self, target: StoredRef, attr: AttrId, on: bool) -> Trial {
        if on {
            self.mats.indices.insert((target, attr));
        } else {
            self.mats.indices.remove(&(target, attr));
        }
        let mut dirty = DirtySet::new(self.updates.len());
        let eq = match target {
            StoredRef::Base(t) => self.dag.base_eq(t),
            StoredRef::Mat(e) => Some(e),
        };
        if let Some(e) = eq {
            self.mark_parents(e, &mut dirty, true, None);
        }
        let changes = self.propagate(dirty);
        Trial {
            changes,
            mat_undo: MatUndo::Index(target, attr, on),
        }
    }

    /// Roll back a trial (restores both the materialized set and all memo
    /// slots).
    pub fn rollback(&mut self, trial: Trial) {
        for ch in trial.changes.into_iter().rev() {
            match ch.slot {
                Slot::Full => self.full[ch.eq.0 as usize] = ch.prev,
                Slot::Diff(u) => self.diff[ch.eq.0 as usize][u.0 as usize] = ch.prev,
            }
        }
        match trial.mat_undo {
            MatUndo::Full(e, on) => {
                if on {
                    self.mats.full.remove(&e);
                } else {
                    self.mats.full.insert(e);
                }
            }
            MatUndo::Diff(e, u, on) => {
                if on {
                    self.mats.diffs.remove(&(e, u));
                } else {
                    self.mats.diffs.insert((e, u));
                }
            }
            MatUndo::Index(t, a, on) => {
                if on {
                    self.mats.indices.remove(&(t, a));
                } else {
                    self.mats.indices.insert((t, a));
                }
            }
        }
    }

    fn mark_parents(&self, e: EqId, dirty: &mut DirtySet, full_changed: bool, u: Option<UpdateId>) {
        for &op in &self.dag.eq(e).parents {
            let p = self.dag.op(op).parent;
            if full_changed {
                dirty.mark_full(p);
                dirty.mark_all_diffs(p);
            } else if let Some(u) = u {
                dirty.mark_diff(p, u);
            }
        }
    }

    /// Propagate dirty slots upward in topological order, recomputing and
    /// recording changes; stops climbing where costs are unchanged
    /// (the §6.2 incremental cost update).
    fn propagate(&mut self, mut dirty: DirtySet) -> Vec<Change> {
        if !self.incremental {
            // Ablation path: recompute everything, record every change.
            let mut changes = Vec::new();
            let order = self.topo.clone();
            for e in order {
                let new_full = self.compute_full_slot(e);
                if !slot_eq(&new_full, &self.full[e.0 as usize]) {
                    changes.push(Change {
                        eq: e,
                        slot: Slot::Full,
                        prev: std::mem::replace(&mut self.full[e.0 as usize], new_full),
                    });
                }
                for u in 0..self.updates.len() {
                    let nd = self.compute_diff_slot(e, UpdateId(u as u16));
                    if !slot_eq(&nd, &self.diff[e.0 as usize][u]) {
                        changes.push(Change {
                            eq: e,
                            slot: Slot::Diff(UpdateId(u as u16)),
                            prev: std::mem::replace(&mut self.diff[e.0 as usize][u], nd),
                        });
                    }
                }
            }
            return changes;
        }

        let mut changes = Vec::new();
        let mut queue: BTreeSet<(usize, EqId)> = dirty
            .nodes()
            .map(|e| (self.rank[e.0 as usize], e))
            .collect();
        while let Some((_, e)) = queue.pop_first() {
            let flags = dirty.take(e);
            let mut full_changed = false;
            let mut diff_changed: Vec<UpdateId> = Vec::new();
            if flags.full {
                let new_full = self.compute_full_slot(e);
                if !slot_eq(&new_full, &self.full[e.0 as usize]) {
                    changes.push(Change {
                        eq: e,
                        slot: Slot::Full,
                        prev: std::mem::replace(&mut self.full[e.0 as usize], new_full),
                    });
                    full_changed = true;
                }
            }
            for u in flags.diff_ids() {
                let nd = self.compute_diff_slot(e, u);
                if !slot_eq(&nd, &self.diff[e.0 as usize][u.0 as usize]) {
                    changes.push(Change {
                        eq: e,
                        slot: Slot::Diff(u),
                        prev: std::mem::replace(&mut self.diff[e.0 as usize][u.0 as usize], nd),
                    });
                    diff_changed.push(u);
                }
            }
            if full_changed || !diff_changed.is_empty() {
                for &op in &self.dag.eq(e).parents {
                    let p = self.dag.op(op).parent;
                    let mut newly = false;
                    if full_changed {
                        newly |= dirty.mark_full(p);
                        newly |= dirty.mark_all_diffs(p);
                    }
                    for &u in &diff_changed {
                        newly |= dirty.mark_diff(p, u);
                    }
                    if newly {
                        queue.insert((self.rank[p.0 as usize], p));
                    }
                }
            }
        }
        changes
    }

    // ==================================================================
    // Slot computation: physical alternatives for full results
    // ==================================================================

    fn compute_full_slot(&mut self, e: EqId) -> SlotState {
        self.stats.full_slot_recomputes += 1;
        let mut best = SlotState {
            cost: f64::INFINITY,
            best: None,
        };
        let ops: Vec<OpId> = self.dag.eq(e).children.clone();
        for op in ops {
            for (cost, alg) in self.full_op_alternatives(op) {
                if cost < best.cost - EPS {
                    best = SlotState {
                        cost,
                        best: Some((op, alg)),
                    };
                }
            }
        }
        if self.dag.eq(e).children.is_empty() {
            // No alternatives: treat as stored (defensive; base relations
            // always have a Scan op so this should not trigger).
            best = SlotState {
                cost: self.reuse_full(e),
                best: None,
            };
        }
        best
    }

    /// All (cost, algorithm) alternatives for computing the full result of
    /// one op, using post-update statistics (recomputation happens after
    /// updates are applied).
    fn full_op_alternatives(&self, op_id: OpId) -> Vec<(f64, Alg)> {
        let op = self.dag.op(op_id);
        let parent = op.parent;
        let out_rows = self.props.new_state(parent).rows;
        let m = &self.model;
        let mut alts = Vec::with_capacity(4);
        match &op.kind {
            OpKind::Scan(t) => {
                alts.push((m.scan(out_rows, self.table_width(*t)), Alg::Scan));
            }
            OpKind::Select { pred } => {
                let child = op.children[0];
                let in_rows = self.props.new_state(child).rows;
                alts.push((self.c_full(child) + m.filter(in_rows), Alg::Filter));
                // Index selection directly against a stored relation.
                if let Some((target, attr, matching)) = self.index_select_path(child, pred) {
                    let total = self.props.new_state(child).rows;
                    alts.push((
                        m.index_select(matching, self.width(child), total) + m.filter(matching),
                        Alg::IndexSelect { target, attr },
                    ));
                }
            }
            OpKind::Project { .. } => {
                let child = op.children[0];
                let in_rows = self.props.new_state(child).rows;
                alts.push((self.c_full(child) + m.filter(in_rows), Alg::Project));
            }
            OpKind::Join { pred } => {
                let l = op.children[0];
                let r = op.children[1];
                self.join_alternatives(
                    &mut alts,
                    JoinSide {
                        eq: l,
                        rows: self.props.new_state(l).rows,
                        width: self.width(l),
                        cost: self.c_full(l),
                    },
                    JoinSide {
                        eq: r,
                        rows: self.props.new_state(r).rows,
                        width: self.width(r),
                        cost: self.c_full(r),
                    },
                    pred,
                    out_rows,
                );
            }
            OpKind::Aggregate { .. } => {
                let child = op.children[0];
                let in_rows = self.props.new_state(child).rows;
                alts.push((
                    self.c_full(child) + m.hash_aggregate(in_rows, out_rows, self.width(parent)),
                    Alg::HashAgg,
                ));
            }
            OpKind::UnionAll => {
                let total: f64 = op.children.iter().map(|c| self.c_full(*c)).sum();
                let rows: f64 = op
                    .children
                    .iter()
                    .map(|c| self.props.new_state(*c).rows)
                    .sum();
                alts.push((total + m.union_all(rows), Alg::Union));
            }
            OpKind::Minus => {
                let l = op.children[0];
                let r = op.children[1];
                alts.push((
                    self.c_full(l)
                        + self.c_full(r)
                        + m.minus(
                            self.props.new_state(l).rows,
                            self.props.new_state(r).rows,
                            self.width(r),
                        ),
                    Alg::MinusAlg,
                ));
            }
            OpKind::Distinct => {
                let child = op.children[0];
                let in_rows = self.props.new_state(child).rows;
                alts.push((
                    self.c_full(child) + m.distinct(in_rows, out_rows, self.width(parent)),
                    Alg::DistinctAlg,
                ));
            }
        }
        alts
    }

    /// Enumerate join algorithms for given side descriptions.
    fn join_alternatives(
        &self,
        alts: &mut Vec<(f64, Alg)>,
        left: JoinSide,
        right: JoinSide,
        pred: &Predicate,
        out_rows: f64,
    ) {
        let m = &self.model;
        // Hash join, both build sides.
        alts.push((
            left.cost
                + right.cost
                + m.hash_join(left.rows, left.width, right.rows, right.width, out_rows),
            Alg::HashJoin { build_left: true },
        ));
        alts.push((
            left.cost
                + right.cost
                + m.hash_join(right.rows, right.width, left.rows, left.width, out_rows),
            Alg::HashJoin { build_left: false },
        ));
        // Merge join (sorts charged).
        alts.push((
            left.cost
                + right.cost
                + m.sort(left.rows, left.width)
                + m.sort(right.rows, right.width)
                + m.merge_join(left.rows, right.rows, out_rows),
            Alg::MergeJoin,
        ));
        // Block nested loops.
        alts.push((
            left.cost
                + right.cost
                + m.block_nl_join(left.rows, left.width, right.rows, right.width),
            Alg::BlockNl,
        ));
        // Index nested loops, each side as the probed inner.
        for (outer, inner, outer_left) in [(&left, &right, true), (&right, &left, false)] {
            for (okey, ikey) in self.join_keys_for(pred, outer.eq, inner.eq) {
                if let Some((target, probe_rows)) = self.probe_path(inner.eq, ikey, outer.rows) {
                    let cost = outer.cost
                        + m.index_nl_join(outer.rows, probe_rows, inner.rows, inner.width)
                        + m.filter(probe_rows)
                        + out_rows * m.cpu_tuple;
                    alts.push((
                        cost,
                        Alg::IndexNl {
                            outer_left,
                            inner: target,
                            outer_key: okey,
                            inner_key: ikey,
                        },
                    ));
                }
            }
        }
    }

    /// Join key pairs oriented as (outer attr, inner attr).
    fn join_keys_for(&self, pred: &Predicate, outer: EqId, inner: EqId) -> Vec<(AttrId, AttrId)> {
        let inner_schema = &self.dag.eq(inner).schema;
        let outer_schema = &self.dag.eq(outer).schema;
        pred.equijoin_keys()
            .into_iter()
            .filter_map(|(a, b)| {
                if outer_schema.position_of(a).is_some() && inner_schema.position_of(b).is_some() {
                    Some((a, b))
                } else if outer_schema.position_of(b).is_some()
                    && inner_schema.position_of(a).is_some()
                {
                    Some((b, a))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Can `inner` be probed via an index on `key`? Returns the stored
    /// relation to probe and the estimated matching rows fetched across
    /// `outer_rows` probes (before residual filtering).
    ///
    /// Three cases: the inner is a base relation with an index; the inner is
    /// a materialized node with an index; or the inner is a single-table
    /// selection whose *base table* has an index (probe the base, then apply
    /// the selection as a residual).
    fn probe_path(&self, inner: EqId, key: AttrId, outer_rows: f64) -> Option<(StoredRef, f64)> {
        let node = self.dag.eq(inner);
        // Direct: materialized or base.
        let direct: Option<StoredRef> = if let Some(t) = node.as_base_table() {
            Some(StoredRef::Base(t))
        } else if self.mats.full.contains(&inner) {
            Some(StoredRef::Mat(inner))
        } else {
            None
        };
        if let Some(target) = direct {
            if self.mats.has_index(target, key) {
                let st = self.props.new_state(inner);
                let matches = outer_rows * st.rows / st.distinct(key).max(1.0);
                return Some((target, matches));
            }
        }
        // Single-table selection over an indexed base.
        if let SemKey::Spj { tables, preds } = &node.key {
            if tables.len() == 1 && !preds.is_true() {
                let t = tables[0];
                let target = StoredRef::Base(t);
                if self.mats.has_index(target, key) {
                    let base = self.catalog.table(t);
                    let rows = self.updates.rows_after_all(t, base.stats.rows);
                    let distinct = base.stats.distinct(key).max(1.0);
                    let matches = outer_rows * rows / distinct;
                    return Some((target, matches));
                }
            }
        }
        None
    }

    /// Sargable index path for a Select op over `child` with `pred`.
    fn index_select_path(&self, child: EqId, pred: &Predicate) -> Option<(StoredRef, AttrId, f64)> {
        let node = self.dag.eq(child);
        let target = if let Some(t) = node.as_base_table() {
            StoredRef::Base(t)
        } else if self.mats.full.contains(&child) {
            StoredRef::Mat(child)
        } else {
            return None;
        };
        // Find an equality or range conjunct on an indexed attribute.
        for c in pred.conjuncts() {
            let single = Predicate::from_conjuncts(vec![c.clone()]);
            if let Some((attr, _, _)) = single.as_single_attr_range() {
                if self.mats.has_index(target, attr) {
                    let st = self.props.new_state(child);
                    let filtered = mvmqo_relalg::stats::derive_select(st, &single);
                    return Some((target, attr, filtered.rows));
                }
            }
        }
        None
    }

    // ==================================================================
    // Slot computation: differentials (§5.3)
    // ==================================================================

    fn compute_diff_slot(&mut self, e: EqId, u: UpdateId) -> SlotState {
        self.stats.diff_slot_recomputes += 1;
        if self.props.delta_is_empty(e, u) {
            return SlotState {
                cost: 0.0,
                best: None,
            };
        }
        let node = self.dag.eq(e);
        if node.is_base_relation() {
            // Differential of a base relation: read the delta log.
            let d = self.props.delta(e, u);
            return SlotState {
                cost: self.model.scan(d.rows, self.width(e)),
                best: Some((node.children[0], Alg::Scan)),
            };
        }
        let mut best = SlotState {
            cost: f64::INFINITY,
            best: None,
        };
        let ops: Vec<OpId> = node.children.clone();
        for op in ops {
            for (cost, alg) in self.diff_op_alternatives(op, u) {
                if cost < best.cost - EPS {
                    best = SlotState {
                        cost,
                        best: Some((op, alg)),
                    };
                }
            }
        }
        best
    }

    /// Alternatives for computing δ(parent, u) through one op.
    fn diff_op_alternatives(&self, op_id: OpId, u: UpdateId) -> Vec<(f64, Alg)> {
        let op = self.dag.op(op_id);
        let parent = op.parent;
        let step = self.updates.step(u);
        let table = step.table;
        let m = &self.model;
        let out_delta_rows = self.props.delta(parent, u).rows;
        let mut alts = Vec::with_capacity(4);
        match &op.kind {
            OpKind::Scan(_) => { /* handled in compute_diff_slot */ }
            OpKind::Select { .. } | OpKind::Project { .. } => {
                let child = op.children[0];
                if !self.dag.eq(child).depends_on(table) {
                    return alts; // this path contributes no delta
                }
                let d_rows = self.props.delta(child, u).rows;
                let alg = if matches!(op.kind, OpKind::Select { .. }) {
                    Alg::Filter
                } else {
                    Alg::Project
                };
                alts.push((self.c_diff(child, u) + m.filter(d_rows), alg));
            }
            OpKind::Join { pred } => {
                let l = op.children[0];
                let r = op.children[1];
                let l_dep = self.dag.eq(l).depends_on(table);
                let r_dep = self.dag.eq(r).depends_on(table);
                match (l_dep, r_dep) {
                    (true, false) => {
                        self.delta_join_alternatives(
                            &mut alts,
                            op_id,
                            u,
                            l,
                            r,
                            true,
                            pred,
                            out_delta_rows,
                        );
                    }
                    (false, true) => {
                        self.delta_join_alternatives(
                            &mut alts,
                            op_id,
                            u,
                            r,
                            l,
                            false,
                            pred,
                            out_delta_rows,
                        );
                    }
                    (true, true) => {
                        // Both inputs change (only possible through non-SPJ
                        // structure): δ = (δL ⋈ R) ∪ ((L∘δL) ⋈ δR).
                        // Cost both sub-joins with hash joins.
                        let dl = self.props.delta(l, u).rows;
                        let dr = self.props.delta(r, u).rows;
                        let r_rows = self.props.state_at(r, u.0 as usize).rows;
                        let l_rows = self.props.state_at(l, u.0 as usize).rows;
                        let cost = self.c_diff(l, u)
                            + self.c_diff(r, u)
                            + self.c_full(l)
                            + self.c_full(r)
                            + m.hash_join(dl, self.width(l), r_rows, self.width(r), out_delta_rows)
                            + m.hash_join(
                                dr,
                                self.width(r),
                                l_rows + dl,
                                self.width(l),
                                out_delta_rows,
                            )
                            + m.union_all(out_delta_rows);
                        alts.push((cost, Alg::HashJoin { build_left: true }));
                    }
                    (false, false) => {}
                }
            }
            OpKind::Aggregate { .. } => {
                let child = op.children[0];
                if !self.dag.eq(child).depends_on(table) {
                    return alts;
                }
                if self.is_grouped(child) {
                    // Roll-up derivation (subsumption): its delta would be a
                    // re-aggregation of partial-aggregate records; the
                    // executor maintains aggregates from raw input deltas
                    // instead, so only the direct op offers a delta plan.
                    return alts;
                }
                let d_in = self.props.delta(child, u).rows;
                if self.mats.full.contains(&parent) {
                    // Materialized aggregate: aggregate the input delta into
                    // merge records (§3.1.2).
                    alts.push((
                        self.c_diff(child, u)
                            + m.hash_aggregate(d_in, out_delta_rows, self.width(parent)),
                        Alg::HashAgg,
                    ));
                } else {
                    // Unmaterialized: recompute the affected groups, which
                    // requires the full input (§3.1.2 "significant extra
                    // work").
                    let full_in = self.props.state_at(child, u.0 as usize).rows;
                    alts.push((
                        self.c_diff(child, u)
                            + self.c_full(child)
                            + m.hash_aggregate(full_in, out_delta_rows, self.width(parent)),
                        Alg::HashAgg,
                    ));
                }
            }
            OpKind::UnionAll => {
                let mut cost = m.union_all(out_delta_rows);
                for &c in &op.children {
                    if self.dag.eq(c).depends_on(table) {
                        cost += self.c_diff(c, u);
                    }
                }
                alts.push((cost, Alg::Union));
            }
            OpKind::Minus => {
                // Incremental maintenance of multiset difference is not
                // supported (§3.1.2 covers only restricted cases);
                // recomputation is forced by an infinite differential cost.
                alts.push((f64::INFINITY, Alg::MinusAlg));
            }
            OpKind::Distinct => {
                let child = op.children[0];
                if !self.dag.eq(child).depends_on(table) {
                    return alts;
                }
                let d_in = self.props.delta(child, u).rows;
                if self.mats.full.contains(&parent) {
                    alts.push((
                        self.c_diff(child, u)
                            + m.distinct(d_in, out_delta_rows, self.width(parent)),
                        Alg::DistinctAlg,
                    ));
                } else {
                    let full_in = self.props.state_at(child, u.0 as usize).rows;
                    alts.push((
                        self.c_diff(child, u)
                            + self.c_full(child)
                            + m.distinct(full_in, out_delta_rows, self.width(parent)),
                        Alg::DistinctAlg,
                    ));
                }
            }
        }
        alts
    }

    /// Alternatives for a one-sided delta join: δ(diff side) ⋈ full side.
    /// `diff_is_left` records which canonical child streams the delta.
    #[allow(clippy::too_many_arguments)]
    fn delta_join_alternatives(
        &self,
        alts: &mut Vec<(f64, Alg)>,
        _op: OpId,
        u: UpdateId,
        d_child: EqId,
        f_child: EqId,
        diff_is_left: bool,
        pred: &Predicate,
        out_rows: f64,
    ) {
        let m = &self.model;
        let d_rows = self.props.delta(d_child, u).rows;
        let f_rows = self.props.state_at(f_child, u.0 as usize).rows;
        let d_cost = self.c_diff(d_child, u);
        let f_cost = self.c_full(f_child);
        // Hash join: build the (usually tiny) delta side.
        alts.push((
            d_cost
                + f_cost
                + m.hash_join(
                    d_rows,
                    self.width(d_child),
                    f_rows,
                    self.width(f_child),
                    out_rows,
                ),
            Alg::HashJoin {
                build_left: diff_is_left,
            },
        ));
        // Index nested loops: stream the delta, probe the stored full side.
        // This is the plan §3.2.3 motivates: (δA ⋈ B) via B's index instead
        // of computing B ⋈ C.
        for (okey, ikey) in self.join_keys_for(pred, d_child, f_child) {
            if let Some((target, probe_rows)) = self.probe_path(f_child, ikey, d_rows) {
                alts.push((
                    d_cost
                        + m.index_nl_join(d_rows, probe_rows, f_rows, self.width(f_child))
                        + m.filter(probe_rows)
                        + out_rows * m.cpu_tuple,
                    Alg::IndexNl {
                        outer_left: diff_is_left,
                        inner: target,
                        outer_key: okey,
                        inner_key: ikey,
                    },
                ));
            }
        }
    }

    // ==================================================================
    // Misc helpers
    // ==================================================================

    /// Row width of an eq node's result.
    pub fn width(&self, e: EqId) -> usize {
        self.dag.eq(e).schema.row_width()
    }

    fn table_width(&self, t: TableId) -> usize {
        self.catalog.table(t).schema.row_width()
    }

    /// True for nodes whose stored form is keyed by groups (aggregate /
    /// distinct), which changes merge behaviour and cost.
    pub fn is_grouped(&self, e: EqId) -> bool {
        self.dag.eq(e).children.iter().any(|op| {
            matches!(
                self.dag.op(*op).kind,
                OpKind::Aggregate { .. } | OpKind::Distinct
            )
        })
    }
}

/// One side of a join being costed.
struct JoinSide {
    eq: EqId,
    rows: f64,
    width: usize,
    cost: f64,
}

fn slot_eq(a: &SlotState, b: &SlotState) -> bool {
    (a.cost - b.cost).abs() <= EPS && a.best == b.best
}

/// Dirty-slot bookkeeping for incremental propagation.
struct DirtySet {
    n_updates: usize,
    map: HashMap<EqId, DirtyFlags>,
}

#[derive(Clone)]
struct DirtyFlags {
    full: bool,
    diffs: Vec<bool>,
}

impl DirtySet {
    fn new(n_updates: usize) -> Self {
        DirtySet {
            n_updates,
            map: HashMap::new(),
        }
    }

    fn entry(&mut self, e: EqId) -> &mut DirtyFlags {
        let n = self.n_updates;
        self.map.entry(e).or_insert_with(|| DirtyFlags {
            full: false,
            diffs: vec![false; n],
        })
    }

    fn mark_full(&mut self, e: EqId) -> bool {
        let f = self.entry(e);
        let newly = !f.full;
        f.full = true;
        newly
    }

    fn mark_diff(&mut self, e: EqId, u: UpdateId) -> bool {
        let f = self.entry(e);
        let newly = !f.diffs[u.0 as usize];
        f.diffs[u.0 as usize] = true;
        newly
    }

    fn mark_all_diffs(&mut self, e: EqId) -> bool {
        let f = self.entry(e);
        let mut newly = false;
        for d in f.diffs.iter_mut() {
            newly |= !*d;
            *d = true;
        }
        newly
    }

    fn nodes(&self) -> impl Iterator<Item = EqId> + '_ {
        self.map.keys().copied()
    }

    fn take(&mut self, e: EqId) -> DirtyFlags {
        self.map.remove(&e).unwrap_or(DirtyFlags {
            full: false,
            diffs: vec![false; self.n_updates],
        })
    }
}

impl DirtyFlags {
    fn diff_ids(&self) -> Vec<UpdateId> {
        self.diffs
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(i, _)| UpdateId(i as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::expr::ScalarExpr;
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    struct Fixture {
        catalog: Catalog,
        dag: Dag,
        root: EqId,
        a: TableId,
        b: TableId,
        c: TableId,
    }

    fn fixture() -> Fixture {
        let mut catalog = Catalog::new();
        let a = catalog.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            100_000.0,
            &["id"],
        );
        let b = catalog.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 100_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            500_000.0,
            &["id"],
        );
        let c = catalog.add_table(
            "c",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 500_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            2_000_000.0,
            &["id"],
        );
        let a_id = catalog.table(a).attr("id");
        let b_aid = catalog.table(b).attr("a_id");
        let b_id = catalog.table(b).attr("id");
        let c_bid = catalog.table(c).attr("b_id");
        let expr = LogicalExpr::Join {
            left: LogicalExpr::join(
                LogicalExpr::scan(a),
                LogicalExpr::scan(b),
                Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
            ),
            right: LogicalExpr::scan(c),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        };
        let mut dag = Dag::new();
        let root = dag.insert_view(&catalog, "v", &expr);
        Fixture {
            catalog,
            dag,
            root,
            a,
            b,
            c,
        }
    }

    fn pk_indices(f: &Fixture) -> HashSet<(StoredRef, AttrId)> {
        [f.a, f.b, f.c]
            .iter()
            .map(|t| (StoredRef::Base(*t), f.catalog.table(*t).primary_key[0]))
            .collect()
    }

    fn engine<'x>(f: &'x Fixture, updates: &'x UpdateModel, mats: MatSet) -> CostEngine<'x> {
        CostEngine::new(&f.dag, &f.catalog, updates, CostModel::default(), mats)
    }

    #[test]
    fn full_costs_are_finite_and_monotone_in_size() {
        let f = fixture();
        let updates =
            UpdateModel::percentage([f.a, f.b, f.c], 10.0, |t| f.catalog.table(t).stats.rows);
        let eng = engine(
            &f,
            &updates,
            MatSet {
                full: [f.root].into_iter().collect(),
                ..Default::default()
            },
        );
        let base_a = f.dag.base_eq(f.a).unwrap();
        assert!(eng.compcost(base_a).is_finite());
        assert!(eng.compcost(f.root).is_finite());
        assert!(eng.compcost(f.root) > eng.compcost(base_a));
    }

    #[test]
    fn diffcost_much_cheaper_than_recompute_at_small_updates() {
        let f = fixture();
        let updates =
            UpdateModel::percentage([f.a, f.b, f.c], 0.5, |t| f.catalog.table(t).stats.rows);
        let mut mats = MatSet {
            full: [f.root].into_iter().collect(),
            ..Default::default()
        };
        mats.indices = pk_indices(&f);
        // Join-key indices (the kind Figure 5(b) shows the greedy phase
        // selecting on its own) plus the view's locator index for
        // delete-merges (api::optimize installs one when PK indices exist).
        mats.indices
            .insert((StoredRef::Base(f.b), f.catalog.table(f.b).attr("a_id")));
        mats.indices
            .insert((StoredRef::Base(f.c), f.catalog.table(f.c).attr("b_id")));
        let root_first = f.dag.eq(f.root).schema.ids()[0];
        mats.indices.insert((StoredRef::Mat(f.root), root_first));
        let eng = engine(&f, &updates, mats);
        let (cost, incremental) = eng.cost_full_result(f.root);
        assert!(incremental, "0.5% updates should favour maintenance");
        assert!(cost < eng.compcost(f.root) + eng.matcost_full(f.root));
    }

    #[test]
    fn recompute_wins_at_huge_updates() {
        let f = fixture();
        let updates =
            UpdateModel::percentage([f.a, f.b, f.c], 90.0, |t| f.catalog.table(t).stats.rows);
        let eng = engine(
            &f,
            &updates,
            MatSet {
                full: [f.root].into_iter().collect(),
                ..Default::default()
            },
        );
        let recompute = eng.compcost(f.root) + eng.matcost_full(f.root);
        let maintain = eng.maintcost(f.root);
        assert!(
            recompute < maintain,
            "recompute={recompute} maintain={maintain}"
        );
    }

    #[test]
    fn materializing_a_shared_node_lowers_total() {
        let f = fixture();
        let updates =
            UpdateModel::percentage([f.a, f.b, f.c], 5.0, |t| f.catalog.table(t).stats.rows);
        let mut mats = MatSet {
            full: [f.root].into_iter().collect(),
            ..Default::default()
        };
        mats.indices = pk_indices(&f);
        let mut eng = engine(&f, &updates, mats);
        let before = eng.total_cost();
        // Materialize B⋈C (the subexpression every δA plan needs as a full
        // input).
        let bc = f
            .dag
            .lookup(&SemKey::Spj {
                tables: vec![f.b, f.c],
                preds: {
                    let b_id = f.catalog.table(f.b).attr("id");
                    let c_bid = f.catalog.table(f.c).attr("b_id");
                    Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid))
                },
            })
            .expect("B⋈C node exists");
        let trial = eng.set_full_mat(bc, true);
        let after_ancestors = eng.total_cost() + eng.cost_full_result(bc).0;
        // The ancestors' costs must not increase; rollback must restore.
        assert!(after_ancestors.is_finite());
        eng.rollback(trial);
        let restored = eng.total_cost();
        assert!((restored - before).abs() < 1e-6);
    }

    #[test]
    fn incremental_and_full_recompute_agree() {
        let f = fixture();
        let updates =
            UpdateModel::percentage([f.a, f.b, f.c], 10.0, |t| f.catalog.table(t).stats.rows);
        let mut mats = MatSet {
            full: [f.root].into_iter().collect(),
            ..Default::default()
        };
        mats.indices = pk_indices(&f);
        let mut eng = engine(&f, &updates, mats);
        // Toggle a materialization incrementally ...
        let ab_key = {
            let a_id = f.catalog.table(f.a).attr("id");
            let b_aid = f.catalog.table(f.b).attr("a_id");
            SemKey::Spj {
                tables: vec![f.a, f.b],
                preds: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
            }
        };
        let ab = f.dag.lookup(&ab_key).unwrap();
        let _trial = eng.set_full_mat(ab, true);
        let incremental_costs: Vec<f64> = f.dag.eq_ids().map(|e| eng.compcost(e)).collect();
        let incremental_diffs: Vec<f64> = f
            .dag
            .eq_ids()
            .flat_map(|e| {
                updates
                    .steps()
                    .iter()
                    .map(move |s| (e, s.id))
                    .collect::<Vec<_>>()
            })
            .map(|(e, u)| eng.diffcost(e, u))
            .collect();
        // ... then force a ground-truth full recompute and compare.
        eng.recompute_all();
        let ground_costs: Vec<f64> = f.dag.eq_ids().map(|e| eng.compcost(e)).collect();
        let ground_diffs: Vec<f64> = f
            .dag
            .eq_ids()
            .flat_map(|e| {
                updates
                    .steps()
                    .iter()
                    .map(move |s| (e, s.id))
                    .collect::<Vec<_>>()
            })
            .map(|(e, u)| eng.diffcost(e, u))
            .collect();
        for (a, b) in incremental_costs.iter().zip(&ground_costs) {
            assert!((a - b).abs() < 1e-6, "full slot mismatch: {a} vs {b}");
        }
        for (a, b) in incremental_diffs.iter().zip(&ground_diffs) {
            assert!((a - b).abs() < 1e-6, "diff slot mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn index_enables_cheap_delta_plans() {
        let f = fixture();
        let updates = UpdateModel::percentage([f.a], 0.1, |t| f.catalog.table(t).stats.rows);
        // Without any index: delta of root w.r.t. δ⁺A must compute B⋈C or
        // hash the full side.
        let no_idx = engine(
            &f,
            &updates,
            MatSet {
                full: [f.root].into_iter().collect(),
                ..Default::default()
            },
        );
        let d_no = no_idx.diffcost(f.root, UpdateId(0));
        // With an index on b.a_id: δA can probe B directly.
        let mut mats = MatSet {
            full: [f.root].into_iter().collect(),
            ..Default::default()
        };
        let b_aid = f.catalog.table(f.b).attr("a_id");
        let c_bid = f.catalog.table(f.c).attr("b_id");
        mats.indices.insert((StoredRef::Base(f.b), b_aid));
        mats.indices.insert((StoredRef::Base(f.c), c_bid));
        let with_idx = engine(&f, &updates, mats);
        let d_with = with_idx.diffcost(f.root, UpdateId(0));
        assert!(
            d_with < d_no * 0.5,
            "index should cut delta cost: {d_with} vs {d_no}"
        );
    }

    #[test]
    fn empty_delta_has_zero_cost() {
        let f = fixture();
        let updates = UpdateModel::percentage([f.a], 10.0, |t| f.catalog.table(t).stats.rows);
        let eng = engine(
            &f,
            &updates,
            MatSet {
                full: [f.root].into_iter().collect(),
                ..Default::default()
            },
        );
        let base_b = f.dag.base_eq(f.b).unwrap();
        for s in updates.steps() {
            assert_eq!(eng.diffcost(base_b, s.id), 0.0);
        }
    }

    #[test]
    fn materialized_aggregate_gets_cheap_delta() {
        let mut catalog = Catalog::new();
        let t = catalog.add_table(
            "t",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("g", DataType::Int, 100.0),
                ColumnSpec::with_range("v", DataType::Float, 1000.0, (0.0, 100.0)),
            ],
            100_000.0,
            &["id"],
        );
        let g = catalog.table(t).attr("g");
        let v = catalog.table(t).attr("v");
        let out = catalog.fresh_attr();
        let agg = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![g],
            vec![mvmqo_relalg::agg::AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Sum,
                ScalarExpr::Col(v),
                out,
            )],
        );
        let mut dag = Dag::new();
        let root = dag.insert_view(&catalog, "v_agg", &agg);
        let updates = UpdateModel::percentage([t], 1.0, |x| catalog.table(x).stats.rows);
        // Materialized (it is a view) → cheap diff.
        let eng_mat = CostEngine::new(
            &dag,
            &catalog,
            &updates,
            CostModel::default(),
            MatSet {
                full: [root].into_iter().collect(),
                ..Default::default()
            },
        );
        let cheap = eng_mat.diffcost(root, UpdateId(0));
        // Unmaterialized → affected-group recompute.
        let eng_unmat = CostEngine::new(
            &dag,
            &catalog,
            &updates,
            CostModel::default(),
            MatSet::default(),
        );
        let expensive = eng_unmat.diffcost(root, UpdateId(0));
        assert!(
            cheap < expensive * 0.5,
            "materialized agg delta {cheap} should beat unmaterialized {expensive}"
        );
    }

    #[test]
    fn total_cost_includes_diff_and_index_members() {
        let f = fixture();
        let updates =
            UpdateModel::percentage([f.a, f.b, f.c], 10.0, |t| f.catalog.table(t).stats.rows);
        let mut eng = engine(
            &f,
            &updates,
            MatSet {
                full: [f.root].into_iter().collect(),
                ..Default::default()
            },
        );
        let base_total = eng.total_cost();
        let _t1 = eng.set_diff_mat(f.root, UpdateId(0), true);
        let with_diff = eng.total_cost();
        assert!(with_diff > 0.0);
        // Adding the diff result adds its computation+storage cost.
        assert!(with_diff >= base_total - 1e-9);
    }
}
