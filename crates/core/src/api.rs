//! One-call facade: describe the maintenance problem, get back the chosen
//! materializations, indices, estimated costs, and an executable program.

use crate::cost::CostModel;
use crate::dag::{add_subsumption_derivations, Dag, EqId, SubsumptionReport};
use crate::opt::{
    run_greedy, Candidate, CostEngine, GreedyOptions, MatSet, Mode, RefreshStrategy, StoredRef,
};
use crate::plan::{extract_program, Program};
use crate::update::UpdateModel;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::schema::AttrId;
use std::time::Instant;

/// The input to the optimizer.
#[derive(Debug, Clone)]
pub struct MaintenanceProblem {
    pub views: Vec<ViewDef>,
    pub updates: UpdateModel,
    /// Indices assumed to exist before optimization (the paper's default:
    /// one per primary key, §7.1).
    pub initial_indices: Vec<(TableId, AttrId)>,
    pub cost_model: CostModel,
    pub options: GreedyOptions,
}

impl MaintenanceProblem {
    pub fn new(views: Vec<ViewDef>, updates: UpdateModel) -> Self {
        MaintenanceProblem {
            views,
            updates,
            initial_indices: Vec::new(),
            cost_model: CostModel::default(),
            options: GreedyOptions::default(),
        }
    }

    /// Assume primary-key indices on all tables referenced by the views.
    pub fn with_pk_indices(mut self, catalog: &Catalog) -> Self {
        self.initial_indices
            .extend(pk_indices_for(catalog, &self.views));
        self
    }
}

/// Primary-key indices over every table the views reference — the paper's
/// §7.1 default physical design. Shared by the one-shot problem builder,
/// the warehouse engine, and the benchmarks so the convention lives in one
/// place.
pub fn pk_indices_for(catalog: &Catalog, views: &[ViewDef]) -> Vec<(TableId, AttrId)> {
    let mut tables: Vec<TableId> = views.iter().flat_map(|v| v.expr.base_tables()).collect();
    tables.sort_unstable();
    tables.dedup();
    let mut out = Vec::new();
    for t in tables {
        for pk in &catalog.table(t).primary_key {
            out.push((t, *pk));
        }
    }
    out
}

/// One chosen extra materialization.
#[derive(Debug, Clone)]
pub struct MatChoice {
    pub node: EqId,
    pub description: String,
    pub strategy: RefreshStrategy,
    /// Permanent (maintained across refreshes) or temporary (discarded after
    /// this refresh).
    pub permanent: bool,
    pub benefit: f64,
}

/// One chosen index.
#[derive(Debug, Clone)]
pub struct IndexChoice {
    pub target: StoredRef,
    pub attr: AttrId,
    pub permanent: bool,
    pub benefit: f64,
}

/// Everything the optimizer reports back.
#[derive(Debug, Clone)]
pub struct OptimizerReport {
    /// Estimated total maintenance cost of the final configuration
    /// (the paper's "Plan Cost (sec)").
    pub total_cost: f64,
    /// Estimated cost with no extra materializations (the NoGreedy
    /// baseline for the same problem).
    pub nogreedy_cost: f64,
    pub chosen_mats: Vec<MatChoice>,
    pub chosen_diffs: Vec<(EqId, crate::update::UpdateId)>,
    pub chosen_indices: Vec<IndexChoice>,
    /// Per-view refresh strategy and estimated cost.
    pub view_strategies: Vec<(String, RefreshStrategy, f64)>,
    pub subsumption: SubsumptionReport,
    pub dag_eq_nodes: usize,
    pub dag_op_nodes: usize,
    pub benefit_evaluations: usize,
    pub full_slot_recomputes: u64,
    pub diff_slot_recomputes: u64,
    pub optimization_time: std::time::Duration,
    /// The executable maintenance program.
    pub program: Program,
}

/// Build the DAG for a set of views (exposed for tests and tools).
pub fn build_dag(catalog: &mut Catalog, views: &[ViewDef]) -> (Dag, SubsumptionReport) {
    let mut dag = Dag::new();
    for v in views {
        v.expr
            .validate(catalog)
            .unwrap_or_else(|err| panic!("invalid view {}: {err}", v.name));
        dag.insert_view(catalog, v.name.clone(), &v.expr);
    }
    let report = add_subsumption_derivations(&mut dag, catalog);
    (dag, report)
}

/// A planned maintenance configuration: the optimizer report *plus* the DAG
/// it was planned against.
///
/// The executable [`Program`] refers to DAG node ids, so a caller that wants
/// to execute (rather than just inspect) the plan needs the matching DAG.
/// The one-shot pipeline used to rebuild it with [`build_dag`] and rely on
/// deterministic node numbering; a long-lived engine that re-optimizes as
/// views register/drop and statistics drift keeps the pair together.
#[derive(Debug)]
pub struct PlannedMaintenance {
    pub dag: Dag,
    pub report: OptimizerReport,
}

/// Run the full pipeline and keep the DAG: DAG construction → subsumption →
/// differential costing → greedy selection → program extraction.
///
/// One-shot façade over the re-entrant [`crate::session::Optimizer`]: each
/// call opens a fresh session, cold-plans, and returns the DAG. A caller
/// that re-plans repeatedly (view churn, statistics drift) should hold the
/// session itself and pay incremental cost instead.
pub fn plan_maintenance(catalog: &mut Catalog, problem: &MaintenanceProblem) -> PlannedMaintenance {
    let mut session = crate::session::Optimizer::new(problem.cost_model, problem.options);
    session.set_initial_indices(problem.initial_indices.clone());
    session.set_update_model(problem.updates.clone());
    for v in &problem.views {
        session.add_view(catalog, v);
    }
    let outcome = session.plan(catalog);
    PlannedMaintenance {
        dag: session.into_dag(),
        report: outcome.report,
    }
}

/// Run the full pipeline: DAG construction → subsumption → differential
/// costing → greedy selection → program extraction.
pub fn optimize(catalog: &mut Catalog, problem: &MaintenanceProblem) -> OptimizerReport {
    plan_maintenance(catalog, problem).report
}

/// Convenience: run both Greedy and NoGreedy on the same problem and return
/// (greedy report, nogreedy report) — the comparison every figure plots.
pub fn optimize_both(
    catalog: &mut Catalog,
    problem: &MaintenanceProblem,
) -> (OptimizerReport, OptimizerReport) {
    let greedy = optimize(catalog, problem);
    let mut nogreedy_problem = problem.clone();
    nogreedy_problem.options.mode = Mode::NoGreedy;
    let nogreedy = optimize(catalog, &nogreedy_problem);
    (greedy, nogreedy)
}

/// A read-only query in a mixed workload: executed `frequency` times per
/// refresh cycle.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub query: ViewDef,
    pub frequency: f64,
}

/// §6.2's extension: optimize a workload of **queries plus periodic
/// updates**. Queries are inserted into the same DAG as the views; their
/// (frequency-weighted) evaluation cost joins the objective, so the greedy
/// phase selects extra views/indices that speed queries up *and* remain
/// cheap to maintain under the update workload. Returns the report plus the
/// estimated per-cycle query cost under the chosen configuration.
pub fn optimize_workload(
    catalog: &mut Catalog,
    problem: &MaintenanceProblem,
    queries: &[WorkloadQuery],
) -> (OptimizerReport, f64) {
    let start = Instant::now();
    let mut all_views = problem.views.clone();
    let n_views = all_views.len();
    all_views.extend(queries.iter().map(|q| q.query.clone()));
    let (dag, subsumption) = build_dag(catalog, &all_views);
    let mut initial = MatSet::default();
    // Only the first n_views roots are materialized views; the rest are
    // query roots that contribute weighted evaluation cost.
    for root in dag.roots().iter().take(n_views) {
        initial.full.insert(root.eq);
    }
    for (t, a) in &problem.initial_indices {
        initial.indices.insert((StoredRef::Base(*t), *a));
    }
    if !problem.initial_indices.is_empty() {
        for root in dag.roots().iter().take(n_views) {
            if let Some(first) = dag.eq(root.eq).schema.ids().first() {
                initial.indices.insert((StoredRef::Mat(root.eq), *first));
            }
        }
    }
    let mut engine = CostEngine::new(&dag, catalog, &problem.updates, problem.cost_model, initial);
    engine.query_workload = dag
        .roots()
        .iter()
        .skip(n_views)
        .zip(queries)
        .map(|(r, q)| (r.eq, q.frequency))
        .collect();
    let greedy = run_greedy(&mut engine, &problem.options);
    let query_cost: f64 = engine
        .query_workload
        .clone()
        .iter()
        .map(|(root, w)| w * engine.c_full(*root))
        .sum();
    let program = extract_program(&engine);
    let mut report = summarize(&dag, &engine, &greedy, subsumption, program, start);
    // view_strategies of query roots are meaningless; keep only real views.
    report.view_strategies.truncate(n_views);
    (report, query_cost)
}

/// Shared report assembly for [`optimize`]-style entry points and the
/// re-entrant session.
pub(crate) fn summarize(
    dag: &Dag,
    engine: &CostEngine<'_>,
    greedy: &crate::opt::GreedyResult,
    subsumption: SubsumptionReport,
    program: Program,
    start: Instant,
) -> OptimizerReport {
    let mut chosen_mats = Vec::new();
    let mut chosen_diffs = Vec::new();
    let mut chosen_indices = Vec::new();
    for (cand, benefit) in &greedy.chosen {
        match *cand {
            Candidate::Full(e) => {
                let (_, incremental) = engine.cost_full_result(e);
                let strategy = if incremental {
                    RefreshStrategy::Incremental
                } else {
                    RefreshStrategy::Recompute
                };
                chosen_mats.push(MatChoice {
                    node: e,
                    description: crate::opt::describe_candidate(dag, *cand),
                    strategy,
                    permanent: incremental,
                    benefit: *benefit,
                });
            }
            Candidate::Diff(e, u) => chosen_diffs.push((e, u)),
            Candidate::Index(target, attr) => {
                let (_, maintained) = engine.cost_index(target);
                chosen_indices.push(IndexChoice {
                    target,
                    attr,
                    permanent: maintained,
                    benefit: *benefit,
                });
            }
        }
    }
    let view_strategies: Vec<(String, RefreshStrategy, f64)> = dag
        .roots()
        .iter()
        .map(|r| {
            let (cost, incremental) = engine.cost_full_result(r.eq);
            let strategy = if incremental {
                RefreshStrategy::Incremental
            } else {
                RefreshStrategy::Recompute
            };
            (r.name.clone(), strategy, cost)
        })
        .collect();
    OptimizerReport {
        total_cost: greedy.final_cost,
        nogreedy_cost: greedy.initial_cost,
        chosen_mats,
        chosen_diffs,
        chosen_indices,
        view_strategies,
        subsumption,
        dag_eq_nodes: dag.eq_count(),
        dag_op_nodes: dag.op_count(),
        benefit_evaluations: greedy.benefit_evaluations,
        full_slot_recomputes: engine.stats.full_slot_recomputes,
        diff_slot_recomputes: engine.stats.diff_slot_recomputes,
        optimization_time: start.elapsed(),
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::expr::{Predicate, ScalarExpr};
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    fn setup() -> (Catalog, Vec<ViewDef>, Vec<TableId>) {
        let mut c = Catalog::new();
        let a = c.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
            ],
            20_000.0,
            &["id"],
        );
        let b = c.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 20_000.0),
            ],
            100_000.0,
            &["id"],
        );
        let d = c.add_table(
            "d",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 100_000.0),
            ],
            400_000.0,
            &["id"],
        );
        c.add_foreign_key(b, &["a_id"], a);
        c.add_foreign_key(d, &["b_id"], b);
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let b_id = c.table(b).attr("id");
        let d_bid = c.table(d).attr("b_id");
        let bd = LogicalExpr::join(
            LogicalExpr::scan(b),
            LogicalExpr::scan(d),
            Predicate::from_expr(ScalarExpr::col_eq_col(b_id, d_bid)),
        );
        let v1 = ViewDef::new(
            "v1",
            LogicalExpr::Join {
                left: LogicalExpr::scan(a),
                right: bd.clone(),
                predicate: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
            }
            .into(),
        );
        let v2 = ViewDef::new("v2", bd);
        (c, vec![v1, v2], vec![a, b, d])
    }

    #[test]
    fn end_to_end_optimize_beats_nogreedy() {
        let (mut c, views, tables) = setup();
        let updates = UpdateModel::percentage(tables, 5.0, |t| c.table(t).stats.rows);
        let problem = MaintenanceProblem::new(views, updates).with_pk_indices(&c);
        let (greedy, nogreedy) = optimize_both(&mut c, &problem);
        assert!(greedy.total_cost <= nogreedy.total_cost + 1e-6);
        assert!(greedy.total_cost.is_finite() && greedy.total_cost > 0.0);
        assert_eq!(greedy.view_strategies.len(), 2);
        assert_eq!(greedy.program.views.len(), 2);
    }

    #[test]
    fn report_counts_dag_sizes() {
        let (mut c, views, tables) = setup();
        let updates = UpdateModel::percentage(tables, 5.0, |t| c.table(t).stats.rows);
        let problem = MaintenanceProblem::new(views, updates).with_pk_indices(&c);
        let report = optimize(&mut c, &problem);
        assert!(report.dag_eq_nodes >= 7);
        assert!(report.dag_op_nodes > report.dag_eq_nodes);
        assert!(report.benefit_evaluations > 0);
    }

    #[test]
    fn query_workload_extension_materializes_query_results() {
        let (mut c, views, tables) = setup();
        // Frequent read-only query over the shared subexpression.
        let queries = vec![WorkloadQuery {
            query: views[1].clone(),
            frequency: 50.0,
        }];
        let updates = UpdateModel::percentage(tables, 5.0, |t| c.table(t).stats.rows);
        let problem = MaintenanceProblem::new(vec![views[0].clone()], updates).with_pk_indices(&c);
        let (report, query_cost) = optimize_workload(&mut c, &problem, &queries);
        // The query's root (or a subexpression of it) should be worth
        // materializing at this frequency, driving query cost below the
        // from-scratch evaluation cost.
        assert!(query_cost.is_finite());
        assert!(report.total_cost <= report.nogreedy_cost + 1e-6);
        assert!(
            !report.chosen_mats.is_empty() || !report.chosen_indices.is_empty(),
            "a 50×-per-cycle query should justify some materialization"
        );
    }

    #[test]
    fn plan_maintenance_is_reentrant_over_evolving_view_set() {
        // A long-lived engine re-plans as views register and drop; repeated
        // calls against the same catalog must work, and the returned DAG
        // must match the program's node ids.
        let (mut c, views, tables) = setup();
        let updates = UpdateModel::percentage(tables, 5.0, |t| c.table(t).stats.rows);
        let p1 =
            MaintenanceProblem::new(vec![views[0].clone()], updates.clone()).with_pk_indices(&c);
        let first = plan_maintenance(&mut c, &p1);
        assert_eq!(first.report.program.views.len(), 1);

        let p2 = MaintenanceProblem::new(views.clone(), updates).with_pk_indices(&c);
        let second = plan_maintenance(&mut c, &p2);
        assert_eq!(second.report.program.views.len(), 2);
        for (name, e) in &second.report.program.views {
            assert!(
                second
                    .dag
                    .roots()
                    .iter()
                    .any(|r| &r.name == name && r.eq == *e),
                "program node {e} for {name} missing from returned DAG"
            );
        }
        assert!(second.report.total_cost.is_finite());
    }

    #[test]
    fn pk_indices_are_attached() {
        let (c, views, _) = setup();
        let problem = MaintenanceProblem::new(views, UpdateModel::default());
        let with = problem.with_pk_indices(&c);
        assert_eq!(with.initial_indices.len(), 3);
    }
}
