//! The cost model (§7.1): "takes into account number of seeks, amount of
//! data read, amount of data written, and CPU time for in-memory
//! processing".
//!
//! All costs are in modeled seconds. Constants are calibrated so a TPC-D
//! scale-0.1 database (~100 MB) produces maintenance plan costs of the same
//! order of magnitude as the paper's figures (tens to thousands of seconds);
//! what the experiments compare is the *relative* behaviour of two
//! optimizers under one model, exactly as in the paper.
//!
//! Buffer sensitivity: hash-based operators fall back to partitioned
//! (out-of-core) variants when their build input outgrows the buffer, and
//! sorts become external — this produces the cost "jump" the paper points
//! out in the Figure 4 discussion.

use mvmqo_storage::blocks::BlockConfig;

/// Cost-model constants plus the block/buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub block: BlockConfig,
    /// Seconds per disk seek (start of a sequential run).
    pub seek_time: f64,
    /// Seconds to transfer one block sequentially.
    pub block_transfer: f64,
    /// Seconds of CPU per tuple touched (hash, compare, copy).
    pub cpu_tuple: f64,
    /// Seconds of CPU per index probe (hash bucket / B-tree descent).
    pub index_probe_cpu: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            block: BlockConfig::default(),
            seek_time: 0.010,
            block_transfer: 0.001, // 4 KB at ~4 MB/s (late-90s disk)
            cpu_tuple: 2.0e-6,
            index_probe_cpu: 8.0e-6,
        }
    }
}

impl CostModel {
    /// Model with the paper's small (1000-block) buffer.
    pub fn small_buffer() -> Self {
        CostModel {
            block: BlockConfig::small_buffer(),
            ..Default::default()
        }
    }

    // ------------------------------------------------------------------
    // I/O primitives
    // ------------------------------------------------------------------

    /// Sequential read/write of `blocks` blocks: one seek plus transfers.
    pub fn seq_io(&self, blocks: f64) -> f64 {
        if blocks <= 0.0 {
            0.0
        } else {
            self.seek_time + blocks * self.block_transfer
        }
    }

    /// One random page access: a (locality-discounted) seek plus one
    /// transfer.
    pub fn random_page(&self) -> f64 {
        self.seek_time * 0.5 + self.block_transfer
    }

    /// Blocks occupied by `rows` tuples of `width` bytes.
    pub fn blocks(&self, rows: f64, width: usize) -> f64 {
        self.block.blocks_for(rows, width)
    }

    /// True if a result fits in the buffer pool.
    pub fn fits(&self, rows: f64, width: usize) -> bool {
        self.block.fits_in_buffer(rows, width)
    }

    // ------------------------------------------------------------------
    // Operator costs. Inputs are assumed pipelined from children (whose
    // own costs are accounted separately, §5.1); any extra I/O an operator
    // needs beyond its pipelined inputs (spills, sorts, probes of stored
    // relations) is charged here.
    // ------------------------------------------------------------------

    /// Full sequential scan of a stored relation.
    pub fn scan(&self, rows: f64, width: usize) -> f64 {
        self.seq_io(self.blocks(rows, width)) + rows * self.cpu_tuple
    }

    /// Reading a materialized result (reusecost of §5.1).
    pub fn reuse(&self, rows: f64, width: usize) -> f64 {
        self.scan(rows, width)
    }

    /// Writing out a computed result (matcost of §6.1).
    pub fn materialize(&self, rows: f64, width: usize) -> f64 {
        self.seq_io(self.blocks(rows, width)) + rows * self.cpu_tuple
    }

    /// On-the-fly selection/projection over a pipelined input.
    pub fn filter(&self, input_rows: f64) -> f64 {
        input_rows * self.cpu_tuple
    }

    /// Index-assisted selection on a stored relation of `total_rows`:
    /// descend the index, then read the matching pages. Random I/O is capped
    /// at one sequential read of the whole relation — beyond that point the
    /// buffer pool would have the relation resident anyway.
    pub fn index_select(&self, matching_rows: f64, width: usize, total_rows: f64) -> f64 {
        let pages = self.blocks(matching_rows, width);
        let random = pages * self.random_page();
        let seq_cap = self.seq_io(self.blocks(total_rows, width));
        self.index_probe_cpu + random.min(seq_cap) + matching_rows * self.cpu_tuple
    }

    /// Hash join with pipelined inputs; `build` should be the smaller side.
    /// Falls back to partitioned (Grace) mode when the build side exceeds
    /// the buffer: both inputs are written out partitioned and re-read.
    pub fn hash_join(
        &self,
        build_rows: f64,
        build_width: usize,
        probe_rows: f64,
        probe_width: usize,
        out_rows: f64,
    ) -> f64 {
        let cpu = (build_rows + probe_rows + out_rows) * self.cpu_tuple;
        if self.fits(build_rows, build_width) {
            cpu
        } else {
            let bb = self.blocks(build_rows, build_width);
            let pb = self.blocks(probe_rows, probe_width);
            // Partition write + read of both inputs.
            cpu + 2.0 * (self.seq_io(bb) + self.seq_io(pb))
        }
    }

    /// Index nested-loop join: probe a stored inner relation's index once
    /// per outer tuple. `match_total` is the total matching inner tuples
    /// across all probes; `inner_rows` is the stored inner's size. Random
    /// probe I/O is capped at one sequential read of the inner — with more
    /// probes than that, the buffer pool ends up holding the inner and
    /// further probes are CPU-only (this cap is what makes tiny-delta index
    /// plans the winners §3.2.3 expects, without letting the model claim
    /// impossible savings for large outers).
    pub fn index_nl_join(
        &self,
        outer_rows: f64,
        match_total: f64,
        inner_rows: f64,
        inner_width: usize,
    ) -> f64 {
        let probes = outer_rows.max(0.0);
        let pages = if match_total <= 0.0 {
            0.0
        } else {
            // Mostly clustered matches (each key's matches colocated) plus a
            // 5% unclustered-miss allowance per probe.
            self.blocks(match_total, inner_width).max(1.0) + 0.05 * probes
        };
        let random = pages * self.random_page();
        let seq_cap = self.seq_io(self.blocks(inner_rows, inner_width));
        probes * self.index_probe_cpu
            + random.min(seq_cap)
            + (match_total.max(0.0)) * self.cpu_tuple
    }

    /// Block nested-loop join (kept for completeness; rarely optimal).
    /// Charges materializing the inner once plus repeated scans.
    pub fn block_nl_join(
        &self,
        outer_rows: f64,
        outer_width: usize,
        inner_rows: f64,
        inner_width: usize,
    ) -> f64 {
        let ob = self.blocks(outer_rows, outer_width);
        let ib = self.blocks(inner_rows, inner_width);
        let passes = (ob / self.block.buffer_blocks as f64).ceil().max(1.0);
        self.materialize(inner_rows, inner_width)
            + passes * self.seq_io(ib)
            + outer_rows * inner_rows * self.cpu_tuple * 0.1
    }

    /// Sort a pipelined input; in-memory when it fits, external two-pass
    /// merge sort otherwise.
    pub fn sort(&self, rows: f64, width: usize) -> f64 {
        if rows <= 1.0 {
            return 0.0;
        }
        let cpu = rows * rows.log2().max(1.0) * self.cpu_tuple * 0.5;
        if self.fits(rows, width) {
            cpu
        } else {
            let b = self.blocks(rows, width);
            cpu + 2.0 * (self.seq_io(b) + self.seq_io(b)) // run write+read, merge write+read
        }
    }

    /// Merge join of two sorted inputs (sorting charged separately).
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        (left_rows + right_rows + out_rows) * self.cpu_tuple
    }

    /// Hash aggregation: build a table of `groups` entries from
    /// `input_rows`; spills when the group table exceeds the buffer.
    pub fn hash_aggregate(&self, input_rows: f64, groups: f64, out_width: usize) -> f64 {
        let cpu = (input_rows + groups) * self.cpu_tuple;
        if self.fits(groups, out_width) {
            cpu
        } else {
            let ib = self.blocks(input_rows, out_width);
            cpu + 2.0 * self.seq_io(ib)
        }
    }

    /// Multiset union of pipelined inputs.
    pub fn union_all(&self, total_rows: f64) -> f64 {
        total_rows * self.cpu_tuple
    }

    /// Multiset difference via hash table on the subtrahend.
    pub fn minus(&self, left_rows: f64, right_rows: f64, right_width: usize) -> f64 {
        let cpu = (left_rows + right_rows) * self.cpu_tuple;
        if self.fits(right_rows, right_width) {
            cpu
        } else {
            cpu + 2.0 * self.seq_io(self.blocks(right_rows, right_width))
        }
    }

    /// Duplicate elimination (hash-based).
    pub fn distinct(&self, input_rows: f64, out_rows: f64, width: usize) -> f64 {
        self.hash_aggregate(input_rows, out_rows, width)
    }

    // ------------------------------------------------------------------
    // Maintenance-specific costs (§6.1)
    // ------------------------------------------------------------------

    /// mergeCost(n): applying computed differentials to a stored result.
    /// Inserts append sequentially; deletes (and aggregate group updates)
    /// probe the stored result per tuple; every secondary index on the
    /// result pays a per-tuple update.
    pub fn merge_into(
        &self,
        ins_rows: f64,
        del_rows: f64,
        width: usize,
        index_count: usize,
        grouped: bool,
    ) -> f64 {
        let mut cost = 0.0;
        if ins_rows > 0.0 {
            if grouped {
                // Aggregate merge: each delta group probes + rewrites its row.
                cost += ins_rows * (self.index_probe_cpu + self.cpu_tuple)
                    + self.blocks(ins_rows, width) * self.random_page();
            } else {
                cost += self.seq_io(self.blocks(ins_rows, width)) + ins_rows * self.cpu_tuple;
            }
        }
        if del_rows > 0.0 {
            cost += del_rows * (self.index_probe_cpu + self.cpu_tuple)
                + self.blocks(del_rows, width) * self.random_page();
        }
        let touched = ins_rows + del_rows;
        cost += touched * index_count as f64 * (self.index_probe_cpu + self.cpu_tuple)
            + (index_count as f64) * self.blocks(touched, 16) * self.random_page();
        cost
    }

    /// Building an index over a stored result (sort + write).
    pub fn index_build(&self, rows: f64, width: usize) -> f64 {
        self.scan(rows, width) + self.sort(rows, 16) + self.seq_io(self.blocks(rows, 16))
    }

    /// Maintaining an index for one update batch of `delta_rows` entries.
    pub fn index_maintain(&self, delta_rows: f64) -> f64 {
        if delta_rows <= 0.0 {
            0.0
        } else {
            delta_rows * (self.index_probe_cpu + self.cpu_tuple)
                + self.blocks(delta_rows, 16) * self.random_page()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn scan_cost_scales_with_size() {
        let small = m().scan(1000.0, 100);
        let large = m().scan(100_000.0, 100);
        assert!(large > small * 50.0);
    }

    #[test]
    fn scan_of_100mb_is_tens_of_seconds() {
        // 100 MB = 25600 blocks at ~4 MB/s ≈ 26s + CPU; anchors the
        // magnitude to the paper's plan costs on late-90s hardware.
        let rows = 1_000_000.0;
        let width = 100; // 100 MB
        let cost = m().scan(rows, width);
        assert!(cost > 20.0 && cost < 35.0, "cost = {cost}");
    }

    #[test]
    fn hash_join_jumps_when_build_exceeds_buffer() {
        let model = m();
        // Buffer = 8000 blocks * 4096 B; width 100 → 40 rows/block →
        // 320 000 rows fit.
        let fits = model.hash_join(300_000.0, 100, 1000.0, 100, 1000.0);
        let spills = model.hash_join(340_000.0, 100, 1000.0, 100, 1000.0);
        assert!(spills > fits * 5.0, "fits={fits} spills={spills}");
    }

    #[test]
    fn small_buffer_spills_earlier() {
        let big = CostModel::default();
        let small = CostModel::small_buffer();
        let rows = 50_000.0; // fits in 8000 blocks, not in 1000 (1250 blocks)
        assert!(big.fits(rows, 100));
        assert!(!small.fits(rows, 100));
        assert!(
            small.hash_join(rows, 100, 1000.0, 100, 1000.0)
                > big.hash_join(rows, 100, 1000.0, 100, 1000.0)
        );
    }

    #[test]
    fn index_nl_beats_hash_join_for_tiny_outer() {
        let model = m();
        // 100 delta rows probing a 1M-row indexed relation vs hashing the
        // whole relation.
        let inl = model.index_nl_join(100.0, 100.0, 1_000_000.0, 100);
        let hj =
            model.hash_join(1_000_000.0, 100, 100.0, 100, 100.0) + model.scan(1_000_000.0, 100); // hash join must read the inner
        assert!(inl < hj / 10.0, "inl={inl} hj={hj}");
    }

    #[test]
    fn index_nl_degrades_for_huge_outer() {
        // With an in-memory inner, per-probe CPU makes index NL lose to a
        // hash join once the outer is large (probe I/O is capped at one
        // sequential read of the inner, so the comparison adds that read to
        // the hash join side).
        let model = m();
        let rows = 500_000.0;
        let inl = model.index_nl_join(rows, rows, rows, 16);
        let hj = model.hash_join(rows, 16, rows, 16, rows) + model.scan(rows, 16);
        assert!(inl > hj, "inl={inl} hj={hj}");
    }

    #[test]
    fn sort_goes_external_past_buffer() {
        let model = m();
        let in_mem = model.sort(100_000.0, 100);
        let external = model.sort(500_000.0, 100);
        // External adds I/O beyond the n log n CPU growth.
        assert!(external > in_mem * 5.0);
    }

    #[test]
    fn zero_sized_inputs_cost_nothing() {
        let model = m();
        assert_eq!(model.seq_io(0.0), 0.0);
        assert_eq!(model.scan(0.0, 100), 0.0);
        assert_eq!(model.index_nl_join(0.0, 0.0, 0.0, 100), 0.0);
        assert_eq!(model.index_maintain(0.0), 0.0);
    }

    #[test]
    fn merge_cost_counts_indices() {
        let model = m();
        let no_idx = model.merge_into(1000.0, 500.0, 100, 0, false);
        let with_idx = model.merge_into(1000.0, 500.0, 100, 2, false);
        assert!(with_idx > no_idx);
    }

    #[test]
    fn grouped_merge_uses_random_io() {
        let model = m();
        let plain = model.merge_into(1000.0, 0.0, 100, 0, false);
        let grouped = model.merge_into(1000.0, 0.0, 100, 0, true);
        assert!(grouped > plain);
    }

    #[test]
    fn materialize_then_reuse_costs_are_symmetricish() {
        let model = m();
        let w = model.materialize(10_000.0, 100);
        let r = model.reuse(10_000.0, 100);
        assert!((w - r).abs() < 1e-9);
    }
}
