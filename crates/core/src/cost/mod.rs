//! Cost model (§7.1): seeks, block transfers, and CPU, with buffer
//! sensitivity.

pub mod model;

pub use model::CostModel;
