//! Update numbering and the update model.
//!
//! §5.2 of the paper: "If there are n relations R₁ … Rₙ, we need to store
//! information about the differentials of the node with respect to δ⁺R₁,
//! δ⁻R₁, …, δ⁺Rₙ, δ⁻Rₙ. We number these updates as 1 … 2n." Updates are
//! propagated **one relation and one kind at a time** (§3.2.2): update
//! 2i−1 is the batch of inserts on Rᵢ, update 2i the batch of deletes, and
//! the state of the database "at" update u reflects all updates numbered
//! below u having been applied.

use mvmqo_relalg::catalog::TableId;
use mvmqo_storage::delta::DeltaKind;
use std::collections::BTreeMap;
use std::fmt;

/// One of the 2n update slots, zero-indexed internally (`0 ..= 2n-1`);
/// the paper's update number is `index + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateId(pub u16);

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0 + 1)
    }
}

/// One update step: which relation, which kind, and the estimated batch
/// size (rows) used by the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStep {
    pub id: UpdateId,
    pub table: TableId,
    pub kind: DeltaKind,
    /// Estimated rows in the delta batch.
    pub rows: f64,
}

/// The full, ordered update workload of one refresh cycle.
///
/// Construction assigns update numbers in the paper's order: both kinds of
/// one relation before moving to the next, inserts before deletes, relations
/// in `TableId` order.
#[derive(Debug, Clone, Default)]
pub struct UpdateModel {
    steps: Vec<UpdateStep>,
    by_table: BTreeMap<TableId, (f64, f64)>,
}

impl UpdateModel {
    /// Build from per-table (inserted rows, deleted rows) estimates. Tables
    /// with zero rows on both sides are omitted.
    pub fn new(per_table: impl IntoIterator<Item = (TableId, f64, f64)>) -> Self {
        let mut by_table = BTreeMap::new();
        for (t, ins, del) in per_table {
            if ins > 0.0 || del > 0.0 {
                by_table.insert(t, (ins, del));
            }
        }
        let mut steps = Vec::with_capacity(by_table.len() * 2);
        for (&table, &(ins, del)) in &by_table {
            steps.push(UpdateStep {
                id: UpdateId(steps.len() as u16),
                table,
                kind: DeltaKind::Insert,
                rows: ins,
            });
            steps.push(UpdateStep {
                id: UpdateId(steps.len() as u16),
                table,
                kind: DeltaKind::Delete,
                rows: del,
            });
        }
        UpdateModel { steps, by_table }
    }

    /// The paper's benchmark update pattern (§7.1): an `x`% update to a
    /// relation inserts `x%` of its current tuples and deletes `x/2 %`
    /// (twice as many inserts as deletes — a growing database). `rows_of`
    /// supplies the current row count per table.
    pub fn percentage(
        tables: impl IntoIterator<Item = TableId>,
        percent: f64,
        rows_of: impl Fn(TableId) -> f64,
    ) -> Self {
        UpdateModel::new(tables.into_iter().map(|t| {
            let rows = rows_of(t);
            (
                t,
                (rows * percent / 100.0).round(),
                (rows * percent / 200.0).round(),
            )
        }))
    }

    /// All update steps in propagation order.
    pub fn steps(&self) -> &[UpdateStep] {
        &self.steps
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    pub fn step(&self, id: UpdateId) -> &UpdateStep {
        &self.steps[id.0 as usize]
    }

    /// Updated tables in propagation order.
    pub fn tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.by_table.keys().copied()
    }

    /// (inserted, deleted) row estimates for a table; zero if untouched.
    pub fn table_delta(&self, t: TableId) -> (f64, f64) {
        self.by_table.get(&t).copied().unwrap_or((0.0, 0.0))
    }

    /// Net row count of `t` after updates numbered `< before` have been
    /// applied, starting from `base_rows`.
    pub fn rows_at(&self, t: TableId, base_rows: f64, before: UpdateId) -> f64 {
        let mut rows = base_rows;
        for s in &self.steps {
            if s.id >= before {
                break;
            }
            if s.table == t {
                match s.kind {
                    DeltaKind::Insert => rows += s.rows,
                    DeltaKind::Delete => rows -= s.rows,
                }
            }
        }
        rows.max(0.0)
    }

    /// Net row count after *all* updates.
    pub fn rows_after_all(&self, t: TableId, base_rows: f64) -> f64 {
        let (ins, del) = self.table_delta(t);
        (base_rows + ins - del).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_follows_paper_order() {
        let m = UpdateModel::new(vec![(TableId(2), 10.0, 5.0), (TableId(0), 4.0, 2.0)]);
        let steps = m.steps();
        assert_eq!(steps.len(), 4);
        // Table order, inserts before deletes.
        assert_eq!(steps[0].table, TableId(0));
        assert_eq!(steps[0].kind, DeltaKind::Insert);
        assert_eq!(steps[1].table, TableId(0));
        assert_eq!(steps[1].kind, DeltaKind::Delete);
        assert_eq!(steps[2].table, TableId(2));
        assert_eq!(steps[2].kind, DeltaKind::Insert);
    }

    #[test]
    fn zero_size_steps_are_kept_within_touched_tables() {
        // A table with inserts but no deletes still gets both slots (the
        // delete slot has zero rows), keeping the 2n numbering uniform.
        let m = UpdateModel::new(vec![(TableId(1), 10.0, 0.0)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.step(UpdateId(1)).rows, 0.0);
    }

    #[test]
    fn untouched_tables_are_omitted() {
        let m = UpdateModel::new(vec![(TableId(0), 0.0, 0.0), (TableId(1), 1.0, 0.0)]);
        assert_eq!(m.tables().collect::<Vec<_>>(), vec![TableId(1)]);
    }

    #[test]
    fn percentage_matches_paper_semantics() {
        let m = UpdateModel::percentage(vec![TableId(0)], 10.0, |_| 1000.0);
        assert_eq!(m.table_delta(TableId(0)), (100.0, 50.0));
    }

    #[test]
    fn rows_at_walks_the_state_sequence() {
        let m = UpdateModel::new(vec![(TableId(0), 100.0, 40.0), (TableId(1), 10.0, 0.0)]);
        // Before anything: base.
        assert_eq!(m.rows_at(TableId(0), 1000.0, UpdateId(0)), 1000.0);
        // After T0 inserts.
        assert_eq!(m.rows_at(TableId(0), 1000.0, UpdateId(1)), 1100.0);
        // After T0 inserts+deletes.
        assert_eq!(m.rows_at(TableId(0), 1000.0, UpdateId(2)), 1060.0);
        // T1 unaffected by T0 steps.
        assert_eq!(m.rows_at(TableId(1), 500.0, UpdateId(2)), 500.0);
        assert_eq!(m.rows_after_all(TableId(0), 1000.0), 1060.0);
    }
}
