//! Physical plan IR and maintenance-program extraction.
//!
//! After the greedy selection fixes the materialized set `M`, the best plans
//! cached in the cost engine (§5: "during the traversal we also cache the
//! best plan computed for each differential, just as we cache the best plans
//! for each full result") are extracted into executable [`PhysPlan`] trees
//! and assembled into a [`Program`]: for each update step, which temporary
//! differentials to store, which maintained results to merge and with what
//! delta plan; and which results to refresh by recomputation at the end.

use crate::dag::{EqId, OpKind, SemKey};
use crate::opt::costing::{Alg, CostEngine, StoredRef};
use crate::update::{UpdateId, UpdateStep};
use mvmqo_relalg::agg::AggSpec;
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_storage::delta::DeltaKind;
use std::collections::BTreeMap;
use std::fmt;

/// A physical plan node with its output schema.
#[derive(Debug, Clone)]
pub struct PhysPlan {
    pub schema: Schema,
    pub node: PlanNode,
}

/// Physical operators the executor understands.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Sequential scan of a base table (current state).
    ScanBase(TableId),
    /// Scan one side of a base table's delta log.
    ScanDelta {
        table: TableId,
        kind: DeltaKind,
    },
    /// Read a stored materialized full result (computed on demand by the
    /// runtime if stale/absent).
    ReadMat(EqId),
    /// Read a temporarily materialized differential.
    ReadDelta(EqId, UpdateId),
    /// Probe an index on a stored relation with the sargable part of
    /// `pred`, then apply `pred` in full.
    IndexScan {
        target: StoredRef,
        attr: AttrId,
        pred: Predicate,
    },
    Filter {
        input: Box<PhysPlan>,
        pred: Predicate,
    },
    Project {
        input: Box<PhysPlan>,
        attrs: Vec<AttrId>,
    },
    /// Hash join; `keys` pairs are (build attr, probe attr).
    HashJoin {
        build: Box<PhysPlan>,
        probe: Box<PhysPlan>,
        keys: Vec<(AttrId, AttrId)>,
        residual: Predicate,
    },
    /// Sort-merge join; `keys` pairs are (left attr, right attr).
    MergeJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        keys: Vec<(AttrId, AttrId)>,
        residual: Predicate,
    },
    /// Nested-loop join with arbitrary predicate.
    NlJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        pred: Predicate,
    },
    /// Stream the outer, probe an index on a stored inner per tuple.
    IndexNlJoin {
        outer: Box<PhysPlan>,
        inner: StoredRef,
        /// (outer attr, inner attr).
        keys: (AttrId, AttrId),
        /// Predicate of the inner equivalence node (applied after probing
        /// when the stored relation is the unfiltered base).
        inner_filter: Predicate,
        residual: Predicate,
    },
    HashAggregate {
        input: Box<PhysPlan>,
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
    },
    UnionAll(Vec<PhysPlan>),
    Minus {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
    },
    Distinct {
        input: Box<PhysPlan>,
    },
}

impl PhysPlan {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match &self.node {
            PlanNode::ScanBase(t) => writeln!(f, "{pad}ScanBase {t}"),
            PlanNode::ScanDelta { table, kind } => writeln!(f, "{pad}ScanDelta {kind}{table}"),
            PlanNode::ReadMat(e) => writeln!(f, "{pad}ReadMat {e}"),
            PlanNode::ReadDelta(e, u) => writeln!(f, "{pad}ReadDelta δ({e},{u})"),
            PlanNode::IndexScan { target, attr, pred } => {
                writeln!(f, "{pad}IndexScan {target:?}.{attr} [{pred}]")
            }
            PlanNode::Filter { input, pred } => {
                writeln!(f, "{pad}Filter [{pred}]")?;
                input.fmt_indented(f, indent + 1)
            }
            PlanNode::Project { input, .. } => {
                writeln!(f, "{pad}Project")?;
                input.fmt_indented(f, indent + 1)
            }
            PlanNode::HashJoin {
                build, probe, keys, ..
            } => {
                writeln!(f, "{pad}HashJoin {keys:?}")?;
                build.fmt_indented(f, indent + 1)?;
                probe.fmt_indented(f, indent + 1)
            }
            PlanNode::MergeJoin {
                left, right, keys, ..
            } => {
                writeln!(f, "{pad}MergeJoin {keys:?}")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            PlanNode::NlJoin { left, right, pred } => {
                writeln!(f, "{pad}NlJoin [{pred}]")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            PlanNode::IndexNlJoin {
                outer, inner, keys, ..
            } => {
                writeln!(f, "{pad}IndexNlJoin probe {inner:?} on {:?}", keys)?;
                outer.fmt_indented(f, indent + 1)
            }
            PlanNode::HashAggregate {
                input, group_by, ..
            } => {
                writeln!(f, "{pad}HashAggregate {group_by:?}")?;
                input.fmt_indented(f, indent + 1)
            }
            PlanNode::UnionAll(inputs) => {
                writeln!(f, "{pad}UnionAll")?;
                for i in inputs {
                    i.fmt_indented(f, indent + 1)?;
                }
                Ok(())
            }
            PlanNode::Minus { left, right } => {
                writeln!(f, "{pad}Minus")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            PlanNode::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// How a maintained (grouped or plain) result absorbs its delta.
#[derive(Debug, Clone)]
pub enum MergeKind {
    /// Multiset union (inserts) / difference (deletes) of delta rows.
    Plain,
    /// Aggregate view: the delta plan produces *input* delta rows, which the
    /// executor folds into the stored groups.
    Aggregate {
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
    },
    /// Distinct view: input delta rows adjust hidden support counts.
    Distinct,
}

/// One maintained result's work at one update step.
#[derive(Debug, Clone)]
pub struct MergeAction {
    pub target: EqId,
    pub kind: MergeKind,
    pub delta_plan: PhysPlan,
}

/// Everything to do when propagating one update step (§3.2.2 order).
#[derive(Debug, Clone)]
pub struct StepProgram {
    pub update: UpdateStep,
    /// Differentials chosen for temporary materialization at this step
    /// (computed before merges so later plans can `ReadDelta` them),
    /// in dependency order.
    pub temp_deltas: Vec<(EqId, PhysPlan)>,
    /// Merges into incrementally-maintained results affected by this step.
    pub merges: Vec<MergeAction>,
}

/// The complete maintenance program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Plans to (re)compute each materialized full result from stored
    /// inputs — used for initial population, on-demand temporaries, and
    /// final recomputation.
    pub full_plans: BTreeMap<EqId, PhysPlan>,
    /// Update steps in propagation order.
    pub steps: Vec<StepProgram>,
    /// Results refreshed by recomputation after all updates are applied
    /// (user views whose recompute plan won).
    pub final_recomputes: Vec<EqId>,
    /// Extra results kept permanently (incremental strategy).
    pub permanent_mats: Vec<EqId>,
    /// Extra results materialized temporarily and discarded afterwards.
    pub temporary_mats: Vec<EqId>,
    /// The user views (name, node).
    pub views: Vec<(String, EqId)>,
}

/// Extract the full maintenance program from a converged cost engine.
pub fn extract_program(engine: &CostEngine<'_>) -> Program {
    let dag = engine.dag;
    let mut program = Program {
        views: dag.roots().iter().map(|r| (r.name.clone(), r.eq)).collect(),
        ..Default::default()
    };
    let view_set: std::collections::HashSet<EqId> = program.views.iter().map(|(_, e)| *e).collect();

    // Full plans + temp/perm classification for every materialized result.
    for &e in &engine.mats.full {
        program.full_plans.insert(e, extract_full(engine, e));
        let (_, incremental) = engine.cost_full_result(e);
        if view_set.contains(&e) {
            if !incremental {
                program.final_recomputes.push(e);
            }
        } else if incremental {
            program.permanent_mats.push(e);
        } else {
            program.temporary_mats.push(e);
        }
    }
    program.final_recomputes.sort_unstable();
    program.permanent_mats.sort_unstable();
    program.temporary_mats.sort_unstable();

    // Which results are maintained incrementally (views + permanent mats).
    let mut maintained: Vec<EqId> = engine
        .mats
        .full
        .iter()
        .copied()
        .filter(|e| engine.cost_full_result(*e).1)
        .collect();
    maintained.sort_unstable();

    for step in engine.updates.steps() {
        let mut sp = StepProgram {
            update: step.clone(),
            temp_deltas: Vec::new(),
            merges: Vec::new(),
        };
        // Temporary differential materializations for this update, ordered
        // bottom-up so consumers find producers already stored.
        let mut diff_mats: Vec<EqId> = engine
            .mats
            .diffs
            .iter()
            .filter(|(_, u)| *u == step.id)
            .map(|(e, _)| *e)
            .collect();
        let order = dag.topo_order();
        diff_mats.sort_by_key(|e| order.iter().position(|x| x == e));
        for e in diff_mats {
            if engine.props.delta_is_empty(e, step.id) {
                continue;
            }
            sp.temp_deltas
                .push((e, extract_diff(engine, e, step.id, true)));
        }
        // Merges for every maintained result affected by this update.
        for &e in &maintained {
            if engine.props.delta_is_empty(e, step.id) {
                continue;
            }
            sp.merges.push(merge_action(engine, e, step.id));
        }
        program.steps.push(sp);
    }
    program
}

/// The merge action for a maintained result at one update.
fn merge_action(engine: &CostEngine<'_>, e: EqId, u: UpdateId) -> MergeAction {
    let dag = engine.dag;
    // Grouped results merge from their *input* delta.
    if let Some((op, _)) = engine.best_diff(e, u) {
        let op = dag.op(op);
        match &op.kind {
            OpKind::Aggregate { group_by, aggs } => {
                return MergeAction {
                    target: e,
                    kind: MergeKind::Aggregate {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    delta_plan: extract_diff(engine, op.children[0], u, false),
                };
            }
            OpKind::Distinct => {
                return MergeAction {
                    target: e,
                    kind: MergeKind::Distinct,
                    delta_plan: extract_diff(engine, op.children[0], u, false),
                };
            }
            _ => {}
        }
    }
    MergeAction {
        target: e,
        kind: MergeKind::Plain,
        delta_plan: extract_diff(engine, e, u, false),
    }
}

/// Extract the best plan for the full result of `e` (never reading `e`
/// itself).
pub fn extract_full(engine: &CostEngine<'_>, e: EqId) -> PhysPlan {
    let dag = engine.dag;
    let node = dag.eq(e);
    let schema = node.schema.clone();
    let Some((op_id, alg)) = engine.best_full(e) else {
        // Leaf base relation.
        if let Some(t) = node.as_base_table() {
            return PhysPlan {
                schema,
                node: PlanNode::ScanBase(t),
            };
        }
        panic!("no full plan for {e}");
    };
    let op = dag.op(op_id);
    match (&op.kind, alg) {
        (OpKind::Scan(t), _) => PhysPlan {
            schema,
            node: PlanNode::ScanBase(*t),
        },
        (OpKind::Select { pred }, Alg::IndexSelect { target, attr }) => PhysPlan {
            schema,
            node: PlanNode::IndexScan {
                target,
                attr,
                pred: pred.clone(),
            },
        },
        (OpKind::Select { pred }, _) => PhysPlan {
            schema,
            node: PlanNode::Filter {
                input: Box::new(input_full(engine, op.children[0])),
                pred: pred.clone(),
            },
        },
        (OpKind::Project { attrs }, _) => PhysPlan {
            schema,
            node: PlanNode::Project {
                input: Box::new(input_full(engine, op.children[0])),
                attrs: attrs.clone(),
            },
        },
        (OpKind::Join { pred }, alg) => {
            let l = input_full(engine, op.children[0]);
            let r = input_full(engine, op.children[1]);
            join_plan(
                engine,
                schema,
                l,
                r,
                op.children[0],
                op.children[1],
                pred,
                alg,
            )
        }
        (OpKind::Aggregate { group_by, aggs }, _) => PhysPlan {
            schema,
            node: PlanNode::HashAggregate {
                input: Box::new(input_full(engine, op.children[0])),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
        },
        (OpKind::UnionAll, _) => PhysPlan {
            schema,
            node: PlanNode::UnionAll(op.children.iter().map(|c| input_full(engine, *c)).collect()),
        },
        (OpKind::Minus, _) => PhysPlan {
            schema,
            node: PlanNode::Minus {
                left: Box::new(input_full(engine, op.children[0])),
                right: Box::new(input_full(engine, op.children[1])),
            },
        },
        (OpKind::Distinct, _) => PhysPlan {
            schema,
            node: PlanNode::Distinct {
                input: Box::new(input_full(engine, op.children[0])),
            },
        },
    }
}

/// How a consumer reads the full result of `c`: reuse a materialization if
/// that is the cheaper option, else inline its best plan.
fn input_full(engine: &CostEngine<'_>, c: EqId) -> PhysPlan {
    let node = engine.dag.eq(c);
    if let Some(t) = node.as_base_table() {
        return PhysPlan {
            schema: node.schema.clone(),
            node: PlanNode::ScanBase(t),
        };
    }
    if engine.mats.full.contains(&c) && engine.reuse_full(c) <= engine.compcost(c) {
        return PhysPlan {
            schema: node.schema.clone(),
            node: PlanNode::ReadMat(c),
        };
    }
    extract_full(engine, c)
}

/// Extract the best plan for δ(e, u). `for_storage` marks extraction of a
/// temp-delta producer (which must not read itself).
pub fn extract_diff(engine: &CostEngine<'_>, e: EqId, u: UpdateId, for_storage: bool) -> PhysPlan {
    let dag = engine.dag;
    let node = dag.eq(e);
    let schema = node.schema.clone();
    let step = engine.updates.step(u);
    if !for_storage
        && engine.mats.diffs.contains(&(e, u))
        && engine.reuse_delta(e, u) <= engine.diffcost(e, u)
    {
        return PhysPlan {
            schema,
            node: PlanNode::ReadDelta(e, u),
        };
    }
    if let Some(t) = node.as_base_table() {
        return PhysPlan {
            schema,
            node: PlanNode::ScanDelta {
                table: t,
                kind: step.kind,
            },
        };
    }
    let Some((op_id, alg)) = engine.best_diff(e, u) else {
        panic!("no differential plan for δ({e},{u})");
    };
    let op = dag.op(op_id);
    match (&op.kind, alg) {
        (OpKind::Scan(t), _) => PhysPlan {
            schema,
            node: PlanNode::ScanDelta {
                table: *t,
                kind: step.kind,
            },
        },
        (OpKind::Select { pred }, _) => PhysPlan {
            schema,
            node: PlanNode::Filter {
                input: Box::new(input_diff(engine, op.children[0], u)),
                pred: pred.clone(),
            },
        },
        (OpKind::Project { attrs }, _) => PhysPlan {
            schema,
            node: PlanNode::Project {
                input: Box::new(input_diff(engine, op.children[0], u)),
                attrs: attrs.clone(),
            },
        },
        (OpKind::Join { pred }, alg) => {
            let l = op.children[0];
            let r = op.children[1];
            let l_dep = dag.eq(l).depends_on(step.table);
            let r_dep = dag.eq(r).depends_on(step.table);
            match (l_dep, r_dep) {
                (true, false) => {
                    let dl = input_diff(engine, l, u);
                    let fr = input_full(engine, r);
                    join_plan(engine, schema, dl, fr, l, r, pred, alg)
                }
                (false, true) => {
                    let dr = input_diff(engine, r, u);
                    let fl = input_full(engine, l);
                    join_plan(engine, schema, fl, dr, l, r, pred, alg)
                }
                (true, true) => both_sides_delta_plan(engine, schema, op_id, u, pred, step.kind),
                (false, false) => unreachable!("delta through independent join"),
            }
        }
        (OpKind::Aggregate { group_by, aggs }, _) => {
            // Delta of an aggregate = aggregation of the input delta (the
            // executor folds these into stored groups at merge time; when
            // this plan is evaluated stand-alone it produces the delta
            // groups' fresh values).
            PhysPlan {
                schema,
                node: PlanNode::HashAggregate {
                    input: Box::new(input_diff(engine, op.children[0], u)),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                },
            }
        }
        (OpKind::UnionAll, _) => PhysPlan {
            schema,
            node: PlanNode::UnionAll(
                op.children
                    .iter()
                    .filter(|c| dag.eq(**c).depends_on(step.table))
                    .map(|c| input_diff(engine, *c, u))
                    .collect(),
            ),
        },
        (OpKind::Minus, _) | (OpKind::Distinct, _) => {
            panic!("differential extraction for unsupported op {:?}", op.kind)
        }
    }
}

fn input_diff(engine: &CostEngine<'_>, c: EqId, u: UpdateId) -> PhysPlan {
    extract_diff(engine, c, u, false)
}

/// δ(E₁⋈E₂) when both inputs change: (δE₁ ⋈ E₂) ∪ ((E₁ ∘ δE₁) ⋈ δE₂), with
/// ∘ = ⊎ for inserts and ∸ for deletes (§5.3).
fn both_sides_delta_plan(
    engine: &CostEngine<'_>,
    schema: Schema,
    op_id: crate::dag::OpId,
    u: UpdateId,
    pred: &Predicate,
    kind: DeltaKind,
) -> PhysPlan {
    let op = engine.dag.op(op_id);
    let l = op.children[0];
    let r = op.children[1];
    let dl = input_diff(engine, l, u);
    let dr = input_diff(engine, r, u);
    let fl = input_full(engine, l);
    let fr = input_full(engine, r);
    let l_schema = engine.dag.eq(l).schema.clone();
    let l_adjusted = PhysPlan {
        schema: l_schema.clone(),
        node: match kind {
            DeltaKind::Insert => PlanNode::UnionAll(vec![fl, dl.clone()]),
            DeltaKind::Delete => PlanNode::Minus {
                left: Box::new(fl),
                right: Box::new(dl.clone()),
            },
        },
    };
    let keys = split_keys(pred, &engine.dag.eq(l).schema, &engine.dag.eq(r).schema);
    let residual = residual_pred(pred);
    let j1 = PhysPlan {
        schema: schema.clone(),
        node: PlanNode::HashJoin {
            build: Box::new(dl),
            probe: Box::new(fr),
            keys: keys.clone(),
            residual: residual.clone(),
        },
    };
    let j2 = PhysPlan {
        schema: schema.clone(),
        node: PlanNode::HashJoin {
            build: Box::new(dr),
            probe: Box::new(l_adjusted),
            keys: keys.iter().map(|(a, b)| (*b, *a)).collect(),
            residual,
        },
    };
    PhysPlan {
        schema,
        node: PlanNode::UnionAll(vec![j1, j2]),
    }
}

/// Build the physical join node for the chosen algorithm. `l_plan`/`r_plan`
/// are in the op's canonical child order.
#[allow(clippy::too_many_arguments)]
fn join_plan(
    engine: &CostEngine<'_>,
    schema: Schema,
    l_plan: PhysPlan,
    r_plan: PhysPlan,
    l: EqId,
    r: EqId,
    pred: &Predicate,
    alg: Alg,
) -> PhysPlan {
    let dag = engine.dag;
    let l_schema = &dag.eq(l).schema;
    let r_schema = &dag.eq(r).schema;
    let keys = split_keys(pred, l_schema, r_schema); // (left attr, right attr)
    let residual = residual_pred(pred);
    let node = match alg {
        Alg::HashJoin { build_left } => {
            if build_left {
                PlanNode::HashJoin {
                    build: Box::new(l_plan),
                    probe: Box::new(r_plan),
                    keys: keys.clone(),
                    residual,
                }
            } else {
                PlanNode::HashJoin {
                    build: Box::new(r_plan),
                    probe: Box::new(l_plan),
                    keys: keys.iter().map(|(a, b)| (*b, *a)).collect(),
                    residual,
                }
            }
        }
        Alg::MergeJoin => PlanNode::MergeJoin {
            left: Box::new(l_plan),
            right: Box::new(r_plan),
            keys,
            residual,
        },
        Alg::BlockNl => PlanNode::NlJoin {
            left: Box::new(l_plan),
            right: Box::new(r_plan),
            pred: pred.clone(),
        },
        Alg::IndexNl {
            outer_left,
            inner,
            outer_key,
            inner_key,
        } => {
            let (outer_plan, inner_eq) = if outer_left { (l_plan, r) } else { (r_plan, l) };
            let inner_filter = match &dag.eq(inner_eq).key {
                SemKey::Spj { preds, .. } if matches!(inner, StoredRef::Base(_)) => preds.clone(),
                _ => Predicate::true_(),
            };
            // The probed key conjunct is re-checked by the executor; drop it
            // from the residual.
            let used = ScalarExpr::col_eq_col(outer_key, inner_key);
            let residual = Predicate::from_conjuncts(
                pred.conjuncts()
                    .iter()
                    .filter(|c| **c != used)
                    .cloned()
                    .collect(),
            );
            PlanNode::IndexNlJoin {
                outer: Box::new(outer_plan),
                inner,
                keys: (outer_key, inner_key),
                inner_filter,
                residual,
            }
        }
        // Fallback (costing never selects these for joins).
        _ => PlanNode::HashJoin {
            build: Box::new(l_plan),
            probe: Box::new(r_plan),
            keys: keys.clone(),
            residual,
        },
    };
    PhysPlan { schema, node }
}

/// Partition equi-join keys as (left attr, right attr).
fn split_keys(pred: &Predicate, l_schema: &Schema, r_schema: &Schema) -> Vec<(AttrId, AttrId)> {
    pred.equijoin_keys()
        .into_iter()
        .filter_map(|(a, b)| {
            if l_schema.position_of(a).is_some() && r_schema.position_of(b).is_some() {
                Some((a, b))
            } else if l_schema.position_of(b).is_some() && r_schema.position_of(a).is_some() {
                Some((b, a))
            } else {
                None
            }
        })
        .collect()
}

/// Non-equi-join conjuncts of a join predicate.
fn residual_pred(pred: &Predicate) -> Predicate {
    Predicate::from_conjuncts(
        pred.conjuncts()
            .iter()
            .filter(|c| {
                !matches!(
                    c,
                    ScalarExpr::Cmp { op: CmpOp::Eq, lhs, rhs }
                        if matches!(
                            (lhs.as_ref(), rhs.as_ref()),
                            (ScalarExpr::Col(_), ScalarExpr::Col(_))
                        )
                )
            })
            .cloned()
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::dag::Dag;
    use crate::opt::costing::MatSet;
    use crate::update::UpdateModel;
    use mvmqo_relalg::catalog::{Catalog, ColumnSpec};
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    fn fixture() -> (Catalog, Dag, EqId, Vec<TableId>) {
        let mut catalog = Catalog::new();
        let a = catalog.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
            ],
            10_000.0,
            &["id"],
        );
        let b = catalog.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 10_000.0),
            ],
            50_000.0,
            &["id"],
        );
        let a_id = catalog.table(a).attr("id");
        let b_aid = catalog.table(b).attr("a_id");
        let expr = LogicalExpr::Join {
            left: LogicalExpr::scan(a),
            right: LogicalExpr::scan(b),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        };
        let mut dag = Dag::new();
        let root = dag.insert_view(&catalog, "v", &expr);
        (catalog, dag, root, vec![a, b])
    }

    #[test]
    fn program_contains_view_and_steps() {
        let (catalog, dag, root, tables) = fixture();
        let updates =
            UpdateModel::percentage(tables.clone(), 10.0, |t| catalog.table(t).stats.rows);
        let mut mats = MatSet::default();
        mats.full.insert(root);
        for t in &tables {
            mats.indices
                .insert((StoredRef::Base(*t), catalog.table(*t).primary_key[0]));
        }
        let engine = CostEngine::new(&dag, &catalog, &updates, CostModel::default(), mats);
        let program = extract_program(&engine);
        assert_eq!(program.views.len(), 1);
        assert_eq!(program.steps.len(), updates.len());
        assert!(program.full_plans.contains_key(&root));
        // Each step affecting the view must carry a merge or the view must
        // be a final recompute.
        if program.final_recomputes.is_empty() {
            assert!(program.steps.iter().any(|s| !s.merges.is_empty()));
        }
    }

    #[test]
    fn full_plan_of_view_is_a_join_tree() {
        let (catalog, dag, root, tables) = fixture();
        let updates = UpdateModel::percentage(tables, 10.0, |t| catalog.table(t).stats.rows);
        let engine = CostEngine::new(
            &dag,
            &catalog,
            &updates,
            CostModel::default(),
            MatSet {
                full: [root].into_iter().collect(),
                ..Default::default()
            },
        );
        let plan = extract_full(&engine, root);
        let rendered = plan.to_string();
        assert!(
            rendered.contains("HashJoin")
                || rendered.contains("MergeJoin")
                || rendered.contains("IndexNlJoin"),
            "plan: {rendered}"
        );
        assert_eq!(plan.schema.len(), dag.eq(root).schema.len());
    }

    #[test]
    fn diff_plan_reads_delta_log() {
        let (catalog, dag, root, tables) = fixture();
        let updates = UpdateModel::percentage(tables.clone(), 5.0, |t| catalog.table(t).stats.rows);
        let mut mats = MatSet {
            full: [root].into_iter().collect(),
            ..Default::default()
        };
        for t in &tables {
            mats.indices
                .insert((StoredRef::Base(*t), catalog.table(*t).primary_key[0]));
        }
        let engine = CostEngine::new(&dag, &catalog, &updates, CostModel::default(), mats);
        let plan = extract_diff(&engine, root, UpdateId(0), false);
        let rendered = plan.to_string();
        assert!(rendered.contains("ScanDelta"), "plan: {rendered}");
    }

    #[test]
    fn residual_and_keys_partition_predicate() {
        let (catalog, _, _, tables) = fixture();
        let a_id = catalog.table(tables[0]).attr("id");
        let a_x = catalog.table(tables[0]).attr("x");
        let b_aid = catalog.table(tables[1]).attr("a_id");
        let pred = Predicate::from_conjuncts(vec![
            ScalarExpr::col_eq_col(a_id, b_aid),
            ScalarExpr::col_cmp_lit(a_x, CmpOp::Gt, 1i64),
        ]);
        let l_schema = catalog.table(tables[0]).schema.clone();
        let r_schema = catalog.table(tables[1]).schema.clone();
        let keys = split_keys(&pred, &l_schema, &r_schema);
        assert_eq!(keys, vec![(a_id, b_aid)]);
        let residual = residual_pred(&pred);
        assert_eq!(residual.conjuncts().len(), 1);
    }
}
