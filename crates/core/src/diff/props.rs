//! Differential logical properties (§5.2).
//!
//! For every equivalence node the optimizer needs, per update u ∈ 1..2n:
//!
//! * the statistics of the node's **differential** δ(e, u), and
//! * the statistics of the node's **full result in the state** where
//!   updates 1..u−1 have already been propagated (the paper stores these in
//!   the per-node array of 2n records).
//!
//! Both are computed here in one bottom-up pass. Because updates are
//! propagated one relation and one kind at a time (§3.2.2), the delta of an
//! SPJ node w.r.t. update u on relation t is simply δt joined with the other
//! base tables *in their state at u*, filtered by the node's predicate —
//! the expensive combinatorial delta expressions of §3.2.1 never need to be
//! built.

use crate::dag::{Dag, DerivedSig, EqId, SemKey};
use crate::update::{UpdateId, UpdateModel};
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::stats::{self, ColStats, RelStats};
use std::sync::Arc;

/// Differential and state-sequence statistics for every equivalence node.
#[derive(Debug, Clone)]
pub struct DiffProps {
    n_updates: usize,
    /// `state[e][k]` = stats of eq node `e` after updates with id `< k`
    /// have been applied; `k` ranges over `0 ..= n_updates`. Index
    /// `n_updates` is the post-all-updates ("new") state used by
    /// recomputation costing.
    state: Vec<Vec<Arc<RelStats>>>,
    /// `delta[e][u]` = stats of δ(e, u); `rows == 0` when the node does not
    /// depend on the updated relation (the null-plan case of §5.2).
    delta: Vec<Vec<Arc<RelStats>>>,
}

impl DiffProps {
    /// Compute all differential properties for `dag` under `updates`.
    pub fn compute(dag: &Dag, catalog: &Catalog, updates: &UpdateModel) -> DiffProps {
        let n = updates.len();
        let mut props = DiffProps {
            n_updates: n,
            state: vec![Vec::new(); dag.eq_arena_size()],
            delta: vec![Vec::new(); dag.eq_arena_size()],
        };
        let order = dag.topo_order();
        for e in order {
            props.compute_node(dag, catalog, updates, e);
        }
        props
    }

    /// Grow the id-indexed side tables to the DAG's current arena extent
    /// (new slots are empty and must be refreshed before use).
    pub fn ensure_capacity(&mut self, dag: &Dag) {
        self.state.resize(dag.eq_arena_size(), Vec::new());
        self.delta.resize(dag.eq_arena_size(), Vec::new());
    }

    /// Dirty-bit statistics refresh: recompute properties only where they
    /// can have moved — nodes depending on a table in `changed_tables`,
    /// nodes in `force` (newly inserted or never computed), and derived
    /// nodes whose inputs moved — propagating change flags bottom-up.
    /// Returns the eq nodes whose properties actually changed. If the
    /// update *numbering* changed (`updates.len()` differs from the last
    /// pass), every live node is recomputed — the per-node arrays are keyed
    /// by the 2n numbering and cannot be patched.
    pub fn refresh(
        &mut self,
        dag: &Dag,
        catalog: &Catalog,
        updates: &UpdateModel,
        changed_tables: &[TableId],
        force: &std::collections::HashSet<EqId>,
    ) -> Vec<EqId> {
        self.ensure_capacity(dag);
        let structural = updates.len() != self.n_updates;
        self.n_updates = updates.len();
        let mut changed: Vec<EqId> = Vec::new();
        let mut changed_set: std::collections::HashSet<EqId> = Default::default();
        for e in dag.topo_order() {
            let node = dag.eq(e);
            let idx = e.0 as usize;
            let fresh = self.state[idx].is_empty();
            let needs = structural
                || fresh
                || force.contains(&e)
                || changed_tables.iter().any(|t| node.depends_on(*t))
                || matches!(
                    &node.key,
                    SemKey::Derived { children, .. }
                        if children.iter().any(|c| changed_set.contains(c))
                );
            if !needs {
                continue;
            }
            let old_state = std::mem::take(&mut self.state[idx]);
            let old_delta = std::mem::take(&mut self.delta[idx]);
            self.compute_node(dag, catalog, updates, e);
            let same = !fresh
                && stats_seq_eq(&old_state, &self.state[idx])
                && stats_seq_eq(&old_delta, &self.delta[idx]);
            if !same {
                changed.push(e);
                changed_set.insert(e);
            }
        }
        changed
    }

    /// Stats of the full result of `e` after updates `< k` applied.
    pub fn state_at(&self, e: EqId, k: usize) -> &RelStats {
        &self.state[e.0 as usize][k]
    }

    /// Stats of the full result before any update.
    pub fn old(&self, e: EqId) -> &RelStats {
        self.state_at(e, 0)
    }

    /// Stats of the full result after all updates (what recomputation
    /// produces and what a permanently materialized result holds at the end
    /// of the refresh cycle).
    pub fn new_state(&self, e: EqId) -> &RelStats {
        self.state_at(e, self.n_updates)
    }

    /// Stats of δ(e, u).
    pub fn delta(&self, e: EqId, u: UpdateId) -> &RelStats {
        &self.delta[e.0 as usize][u.0 as usize]
    }

    /// True if δ(e, u) is empty because `e` does not depend on the updated
    /// relation (or the batch is empty).
    pub fn delta_is_empty(&self, e: EqId, u: UpdateId) -> bool {
        self.delta(e, u).rows <= 0.0
    }

    /// Total delta rows across all updates (used for index-maintenance
    /// costing on materialized results).
    pub fn total_delta_rows(&self, e: EqId) -> f64 {
        self.delta[e.0 as usize].iter().map(|d| d.rows).sum()
    }

    pub fn n_updates(&self) -> usize {
        self.n_updates
    }

    fn compute_node(&mut self, dag: &Dag, catalog: &Catalog, updates: &UpdateModel, e: EqId) {
        let node = dag.eq(e);
        let n = self.n_updates;
        let mut states: Vec<Arc<RelStats>> = Vec::with_capacity(n + 1);
        let mut deltas: Vec<Arc<RelStats>> = Vec::with_capacity(n);
        match &node.key {
            SemKey::Spj { tables, preds } => {
                for k in 0..=n {
                    // state[k] differs from state[k−1] only if update k−1
                    // touches one of this node's tables — for a node over a
                    // few tables most of the 2n+1 states are verbatim
                    // repeats, so reuse instead of re-deriving.
                    if k > 0 {
                        let step = updates.step(UpdateId((k - 1) as u16));
                        if step.rows <= 0.0 || !tables.contains(&step.table) {
                            let prev = states[k - 1].clone();
                            states.push(prev);
                            continue;
                        }
                    }
                    states.push(Arc::new(crate::dag::spj_stats(
                        catalog,
                        tables,
                        preds,
                        &|t| base_stats_at(catalog, updates, t, UpdateId(k as u16)),
                    )));
                }
                for u in 0..n {
                    let step = updates.step(UpdateId(u as u16));
                    if !node.depends_on(step.table) || step.rows <= 0.0 {
                        deltas.push(Arc::new(RelStats::empty()));
                        continue;
                    }
                    if fk_prunes_delta(catalog, updates, tables, preds, step) {
                        // §5.3: joins of a parent relation's insert delta
                        // with child relations that cannot yet reference the
                        // new keys are provably empty.
                        deltas.push(Arc::new(RelStats::empty()));
                        continue;
                    }
                    let d = crate::dag::spj_stats(catalog, tables, preds, &|t| {
                        if t == step.table {
                            base_delta_stats(catalog, step.table, step.rows)
                        } else {
                            base_stats_at(catalog, updates, t, UpdateId(u as u16))
                        }
                    });
                    deltas.push(Arc::new(d));
                }
            }
            SemKey::Derived { sig, children } => {
                // Children are already computed (topological order).
                for k in 0..=n {
                    states.push(Arc::new(self.derive_state(dag, sig, children, k)));
                }
                for u in 0..n {
                    let step = updates.step(UpdateId(u as u16));
                    if !node.depends_on(step.table) || step.rows <= 0.0 {
                        deltas.push(Arc::new(RelStats::empty()));
                        continue;
                    }
                    deltas.push(Arc::new(self.derive_delta(
                        dag,
                        sig,
                        children,
                        UpdateId(u as u16),
                    )));
                }
            }
        }
        self.state[e.0 as usize] = states;
        self.delta[e.0 as usize] = deltas;
    }

    fn derive_state(&self, _dag: &Dag, sig: &DerivedSig, children: &[EqId], k: usize) -> RelStats {
        let c0 = self.state_at(children[0], k);
        match sig {
            DerivedSig::Select(p) => stats::derive_select(c0, p),
            DerivedSig::Project(attrs) => stats::derive_project(c0, attrs),
            DerivedSig::Aggregate { group_by, aggs } => {
                let outs: Vec<_> = aggs.iter().map(|a| a.out).collect();
                stats::derive_aggregate(c0, group_by, &outs)
            }
            DerivedSig::UnionAll => stats::derive_union(c0, self.state_at(children[1], k)),
            DerivedSig::Minus => stats::derive_minus(c0, self.state_at(children[1], k)),
            DerivedSig::Distinct => stats::derive_distinct(c0),
        }
    }

    fn derive_delta(
        &self,
        _dag: &Dag,
        sig: &DerivedSig,
        children: &[EqId],
        u: UpdateId,
    ) -> RelStats {
        let d0 = self.delta(children[0], u);
        match sig {
            DerivedSig::Select(p) => stats::derive_select(d0, p),
            DerivedSig::Project(attrs) => stats::derive_project(d0, attrs),
            DerivedSig::Aggregate { group_by, aggs } => {
                // The delta of an aggregate is one merge record per affected
                // group: aggregate the input delta.
                let outs: Vec<_> = aggs.iter().map(|a| a.out).collect();
                stats::derive_aggregate(d0, group_by, &outs)
            }
            DerivedSig::UnionAll => {
                let d1 = self.delta(children[1], u);
                if d0.rows <= 0.0 {
                    d1.clone()
                } else if d1.rows <= 0.0 {
                    d0.clone()
                } else {
                    stats::derive_union(d0, d1)
                }
            }
            DerivedSig::Minus => {
                // Conservative: delta bounded by the left delta (the costing
                // layer forces recomputation for dependent Minus nodes, see
                // opt::costing).
                d0.clone()
            }
            DerivedSig::Distinct => stats::derive_distinct(d0),
        }
    }
}

/// Element-wise approximate equality of two property sequences. Shared
/// (`Arc`-identical) entries compare by pointer.
fn stats_seq_eq(a: &[Arc<RelStats>], b: &[Arc<RelStats>]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| Arc::ptr_eq(x, y) || x.approx_eq(y, 1e-9))
}

/// Foreign-key emptiness pruning (§5.3): when update `step` inserts into a
/// relation `t` whose primary key is referenced by an FK conjunct inside
/// this SPJ node, and every child relation on the FK's other side is
/// updated strictly *after* `t` in the propagation order (or not at all),
/// the child's current state cannot reference the freshly inserted keys, so
/// the node's differential is exactly empty.
///
/// This is exact under the one-at-a-time propagation of §3.2.2: updates are
/// numbered by table id, so a child with a larger table id is still in its
/// pre-update state when `t`'s inserts propagate, and referential integrity
/// of the pre-update database guarantees no dangling references to new
/// keys. Deletes are never pruned (children may legitimately reference
/// deleted parents mid-sequence).
fn fk_prunes_delta(
    catalog: &Catalog,
    updates: &UpdateModel,
    tables: &[TableId],
    preds: &mvmqo_relalg::expr::Predicate,
    step: &crate::update::UpdateStep,
) -> bool {
    if step.kind != mvmqo_storage::delta::DeltaKind::Insert {
        return false;
    }
    let parent_def = catalog.table(step.table);
    for (a, b) in preds.equijoin_keys() {
        for (child_attr, parent_attr) in [(a, b), (b, a)] {
            if !parent_def.primary_key.contains(&parent_attr) {
                continue;
            }
            if !catalog.is_fk_edge(child_attr, parent_attr) {
                continue;
            }
            let Some(child_table) = catalog.owner_of(child_attr) else {
                continue;
            };
            if !tables.contains(&child_table) {
                continue;
            }
            let child_updated_before =
                updates.tables().any(|t| t == child_table) && child_table < step.table;
            if !child_updated_before {
                return true;
            }
        }
    }
    false
}

/// Base-table statistics at update state `k` (updates `< k` applied):
/// catalog statistics rescaled to the row count the update model predicts.
pub fn base_stats_at(
    catalog: &Catalog,
    updates: &UpdateModel,
    t: TableId,
    k: UpdateId,
) -> RelStats {
    let def = catalog.table(t);
    let rows = updates.rows_at(t, def.stats.rows, k);
    scale_base_stats(&def.stats, rows)
}

/// Statistics of one delta batch of `rows` tuples of table `t`: column
/// profiles inherited from the base table, capped by the batch size.
pub fn base_delta_stats(catalog: &Catalog, t: TableId, rows: f64) -> RelStats {
    let def = catalog.table(t);
    let mut out = RelStats {
        rows,
        cols: def.stats.cols.clone(),
    };
    for c in out.cols.values_mut() {
        // Key-like columns have one distinct value per delta tuple; others
        // keep their base distinct count capped at the batch size.
        if (c.distinct - def.stats.rows).abs() < 1e-9 {
            c.distinct = rows.max(1.0);
        } else {
            c.distinct = c.distinct.min(rows.max(1.0));
        }
    }
    out
}

/// Rescale a base table's statistics to a new row count, growing or
/// shrinking key-like distinct counts proportionally.
pub fn scale_base_stats(base: &RelStats, new_rows: f64) -> RelStats {
    let mut out = RelStats {
        rows: new_rows,
        cols: base.cols.clone(),
    };
    let ratio = if base.rows > 0.0 {
        new_rows / base.rows
    } else {
        1.0
    };
    for c in out.cols.values_mut() {
        let scaled = if (c.distinct - base.rows).abs() < 1e-9 {
            c.distinct * ratio
        } else {
            c.distinct
        };
        *c = ColStats {
            distinct: scaled.clamp(1.0, new_rows.max(1.0)),
            range: c.range,
        };
    }
    out
}

/// Which children of an op supply differentials vs full results for update
/// `u` — diffChildren(o, i) and fullChildren(o, i) of §5.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffChildSplit {
    /// Children whose differential feeds the op's differential.
    pub diff_children: Vec<EqId>,
    /// Children whose full result (at the state of update `u`) is needed.
    pub full_children: Vec<EqId>,
}

/// Classify an op's children for update `u`. A child belongs to
/// `diff_children` iff it depends on the updated relation.
pub fn split_children(dag: &Dag, op: crate::dag::OpId, table: TableId) -> DiffChildSplit {
    let op = dag.op(op);
    let mut diff_children = Vec::new();
    let mut full_children = Vec::new();
    match &op.kind {
        crate::dag::OpKind::Join { .. } => {
            for &c in &op.children {
                if dag.eq(c).depends_on(table) {
                    diff_children.push(c);
                } else {
                    full_children.push(c);
                }
            }
            // When both inputs change, both full results are also needed:
            // δ(E₁⋈E₂) = (δE₁ ⋈ E₂) ∪ ((E₁ ⊎ δE₁) ⋈ δE₂).
            if diff_children.len() == 2 {
                full_children = op.children.clone();
            }
        }
        _ => {
            for &c in &op.children {
                if dag.eq(c).depends_on(table) {
                    diff_children.push(c);
                }
            }
        }
    }
    DiffChildSplit {
        diff_children,
        full_children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::expr::{Predicate, ScalarExpr};
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    fn setup() -> (Catalog, TableId, TableId, Dag, EqId) {
        let mut c = Catalog::new();
        let a = c.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
            ],
            1000.0,
            &["id"],
        );
        let b = c.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 1000.0),
            ],
            5000.0,
            &["id"],
        );
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let expr = LogicalExpr::Join {
            left: LogicalExpr::scan(a),
            right: LogicalExpr::scan(b),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        };
        let mut dag = Dag::new();
        let root = dag.insert_view(&c, "v", &expr);
        (c, a, b, dag, root)
    }

    #[test]
    fn state_sequence_tracks_base_growth() {
        let (c, a, b, dag, root) = setup();
        // 10% inserts / 5% deletes on both tables.
        let m = UpdateModel::percentage(vec![a, b], 10.0, |t| c.table(t).stats.rows);
        let props = DiffProps::compute(&dag, &c, &m);
        let base_a = dag.base_eq(a).unwrap();
        assert_eq!(props.old(base_a).rows, 1000.0);
        // After a's inserts: 1100; after a's deletes: 1050.
        assert_eq!(props.state_at(base_a, 1).rows, 1100.0);
        assert_eq!(props.state_at(base_a, 2).rows, 1050.0);
        assert_eq!(props.new_state(base_a).rows, 1050.0);
        // Join grows accordingly: |A⋈B| at old = 5000.
        assert!((props.old(root).rows - 5000.0).abs() < 1.0);
        assert!(props.new_state(root).rows > 5000.0);
    }

    #[test]
    fn delta_of_independent_node_is_empty() {
        let (c, a, b, dag, _) = setup();
        let m = UpdateModel::percentage(vec![a], 10.0, |t| c.table(t).stats.rows);
        let props = DiffProps::compute(&dag, &c, &m);
        let base_b = dag.base_eq(b).unwrap();
        for u in 0..m.len() {
            assert!(props.delta_is_empty(base_b, UpdateId(u as u16)));
        }
    }

    #[test]
    fn join_delta_scales_with_batch() {
        let (c, a, b, dag, root) = setup();
        let m = UpdateModel::percentage(vec![a, b], 10.0, |t| c.table(t).stats.rows);
        let props = DiffProps::compute(&dag, &c, &m);
        // δ⁺A = 100 rows; join with B (5 per A row) ≈ 500.
        let d = props.delta(root, UpdateId(0));
        assert!(d.rows > 100.0 && d.rows < 1500.0, "delta rows = {}", d.rows);
        // Delete delta (50 rows of A) is smaller.
        let d_del = props.delta(root, UpdateId(1));
        assert!(d_del.rows < d.rows);
    }

    #[test]
    fn split_children_classifies_join_sides() {
        let (c, a, b, dag, root) = setup();
        let _ = c;
        let join_op = dag.eq(root).children[0];
        let split = split_children(&dag, join_op, a);
        assert_eq!(split.diff_children.len(), 1);
        assert_eq!(split.full_children.len(), 1);
        let base_a = dag.base_eq(a).unwrap();
        let base_b = dag.base_eq(b).unwrap();
        assert_eq!(split.diff_children[0], base_a);
        assert_eq!(split.full_children[0], base_b);
    }

    #[test]
    fn delta_stats_of_base_cap_distincts() {
        let (c, a, _, _, _) = setup();
        let d = base_delta_stats(&c, a, 100.0);
        assert_eq!(d.rows, 100.0);
        let id_attr = c.table(a).attr("id");
        let x_attr = c.table(a).attr("x");
        assert_eq!(d.cols[&id_attr].distinct, 100.0); // key column
        assert_eq!(d.cols[&x_attr].distinct, 50.0); // non-key keeps profile
    }

    #[test]
    fn scale_base_stats_grows_keys_only() {
        let (c, a, _, _, _) = setup();
        let grown = scale_base_stats(&c.table(a).stats, 2000.0);
        let id_attr = c.table(a).attr("id");
        let x_attr = c.table(a).attr("x");
        assert_eq!(grown.cols[&id_attr].distinct, 2000.0);
        assert_eq!(grown.cols[&x_attr].distinct, 50.0);
    }

    #[test]
    fn zero_percent_update_has_no_steps() {
        let (c, a, _, _, _) = setup();
        let m = UpdateModel::percentage(vec![a], 0.0, |t| c.table(t).stats.rows);
        assert!(m.is_empty());
    }
}
