//! Differential framework (§3, §5.2–5.3): per-node delta statistics, the
//! state sequence of full results under one-at-a-time update propagation,
//! and the diffChildren/fullChildren classification.

pub mod props;

pub use props::{
    base_delta_stats, base_stats_at, scale_base_stats, split_children, DiffChildSplit, DiffProps,
};
