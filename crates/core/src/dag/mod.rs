//! The AND-OR DAG (§4 of the paper): representation, construction with
//! eager unification, expansion to all join orders with selections pushed
//! down, and subsumption derivations.

pub mod build;
pub mod node;
pub mod subsume;

pub use build::{spj_schema, spj_stats, Dag, DagRoot};
pub use node::{DerivedSig, EqId, EqNode, OpId, OpKind, OpNode, SemKey};
pub use subsume::{
    add_subsumption_derivations, add_subsumption_derivations_incremental, SubsumeState,
    SubsumptionReport,
};
