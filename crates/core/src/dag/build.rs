//! DAG construction and expansion.
//!
//! Queries are inserted one at a time (§4.2). For the select-project-join
//! fragment the builder computes the canonical semantic key *(table set,
//! applied conjuncts)* and materializes **every** associativity /
//! commutativity / selection-pushdown variant by enumerating all binary
//! splits of the table set — this is the *expanded DAG* of Figure 1(c),
//! produced constructively rather than by destructive rewriting. Because
//! every creation path first consults the key memo, logically equivalent
//! subexpressions are **unified eagerly**: the situation of §4.2 where two
//! syntactically different but equivalent nodes would coexist until a
//! transformation exposes them cannot arise — they hit the same memo slot
//! at insertion. Hashing-based duplicate detection of repeated operations
//! (Volcano's scheme) is the op memo.

use crate::dag::node::{DerivedSig, EqId, EqNode, OpId, OpKind, OpNode, SemKey};
use mvmqo_relalg::agg::AggSpec;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::expr::Predicate;
use mvmqo_relalg::logical::LogicalExpr;
use mvmqo_relalg::schema::{AttrId, Attribute, Schema};
use mvmqo_relalg::stats;
use mvmqo_relalg::stats::RelStats;
use std::collections::HashMap;

/// A named root of the DAG (one per view).
#[derive(Debug, Clone)]
pub struct DagRoot {
    pub name: String,
    pub eq: EqId,
}

/// The AND-OR DAG over all views being maintained.
///
/// The arena is **incrementally extensible**: views are inserted one at a
/// time (reusing every eq/op node the memo already holds) and can be
/// removed again — [`Dag::remove_view`] detaches the root and
/// garbage-collects nodes no longer reachable from any remaining root.
/// Dead slots become tombstones (ids are never reused, so memo slots held
/// by a long-lived optimizer session stay valid); all iteration and count
/// accessors see live nodes only, while `*_arena_size` report the physical
/// extent for id-indexed side tables.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    eqs: Vec<EqNode>,
    ops: Vec<OpNode>,
    eq_memo: HashMap<SemKey, EqId>,
    op_memo: HashMap<(OpKind, Vec<EqId>), OpId>,
    roots: Vec<DagRoot>,
    /// Base tables mentioned anywhere in the live DAG, sorted.
    base_tables: Vec<TableId>,
    /// Tombstone flags, indexed by id. Empty-prefix semantics: nodes whose
    /// id is past the end of the vector are live (saves reallocation churn
    /// during construction).
    dead_eqs: Vec<bool>,
    dead_ops: Vec<bool>,
    dead_eq_count: usize,
    dead_op_count: usize,
}

impl Dag {
    pub fn new() -> Self {
        Dag::default()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn eq(&self, id: EqId) -> &EqNode {
        &self.eqs[id.0 as usize]
    }

    pub fn op(&self, id: OpId) -> &OpNode {
        &self.ops[id.0 as usize]
    }

    /// Live equivalence nodes.
    pub fn eq_count(&self) -> usize {
        self.eqs.len() - self.dead_eq_count
    }

    /// Live operation nodes.
    pub fn op_count(&self) -> usize {
        self.ops.len() - self.dead_op_count
    }

    /// Physical arena extent for eq-id-indexed side tables (includes
    /// tombstones).
    pub fn eq_arena_size(&self) -> usize {
        self.eqs.len()
    }

    /// Physical arena extent for op-id-indexed side tables.
    pub fn op_arena_size(&self) -> usize {
        self.ops.len()
    }

    pub fn eq_is_live(&self, id: EqId) -> bool {
        !self.dead_eqs.get(id.0 as usize).copied().unwrap_or(false)
    }

    pub fn op_is_live(&self, id: OpId) -> bool {
        !self.dead_ops.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Live equivalence nodes, in id order.
    pub fn eq_ids(&self) -> impl Iterator<Item = EqId> + '_ {
        (0..self.eqs.len() as u32)
            .map(EqId)
            .filter(|e| self.eq_is_live(*e))
    }

    /// Live operation nodes, in id order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len() as u32)
            .map(OpId)
            .filter(|o| self.op_is_live(*o))
    }

    pub fn roots(&self) -> &[DagRoot] {
        &self.roots
    }

    /// All base tables mentioned in the DAG, sorted — these define the
    /// update numbering (n relations → 2n updates, §5.2).
    pub fn base_tables(&self) -> &[TableId] {
        &self.base_tables
    }

    /// The equivalence node of a base relation, if present.
    pub fn base_eq(&self, table: TableId) -> Option<EqId> {
        self.eq_memo
            .get(&SemKey::Spj {
                tables: vec![table],
                preds: Predicate::true_(),
            })
            .copied()
    }

    /// Look up an equivalence node by semantic key.
    pub fn lookup(&self, key: &SemKey) -> Option<EqId> {
        self.eq_memo.get(key).copied()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Insert a view; returns its root equivalence node. The same
    /// expression inserted twice lands on the same node (unification).
    pub fn insert_view(
        &mut self,
        catalog: &Catalog,
        name: impl Into<String>,
        expr: &LogicalExpr,
    ) -> EqId {
        let eq = self.insert_expr(catalog, expr);
        self.roots.push(DagRoot {
            name: name.into(),
            eq,
        });
        eq
    }

    /// Detach a view's root and garbage-collect every node no longer
    /// reachable from a remaining root. Returns the detached root's eq
    /// node, or `None` if no root carries `name`. Dead nodes are removed
    /// from both memos (re-adding an equivalent view later creates fresh
    /// nodes) and tombstoned in place — surviving ids keep their meaning,
    /// which is what lets a re-entrant optimizer session keep its memo
    /// slots across view-set changes.
    pub fn remove_view(&mut self, name: &str) -> Option<EqId> {
        let pos = self.roots.iter().position(|r| r.name == name)?;
        let root = self.roots.remove(pos).eq;
        self.collect_garbage();
        Some(root)
    }

    /// Mark-and-sweep from the current root set.
    fn collect_garbage(&mut self) {
        let mut eq_live = vec![false; self.eqs.len()];
        let mut op_live = vec![false; self.ops.len()];
        let mut stack: Vec<EqId> = self.roots.iter().map(|r| r.eq).collect();
        while let Some(e) = stack.pop() {
            if eq_live[e.0 as usize] {
                continue;
            }
            eq_live[e.0 as usize] = true;
            for &op in &self.eqs[e.0 as usize].children {
                if !op_live[op.0 as usize] {
                    op_live[op.0 as usize] = true;
                    stack.extend(self.ops[op.0 as usize].children.iter().copied());
                }
            }
        }
        self.dead_eqs = eq_live.iter().map(|l| !l).collect();
        self.dead_ops = op_live.iter().map(|l| !l).collect();
        self.dead_eq_count = self.dead_eqs.iter().filter(|d| **d).count();
        self.dead_op_count = self.dead_ops.iter().filter(|d| **d).count();
        // Sweep the memos so future insertions of equivalent expressions
        // do not resolve to tombstones.
        self.eq_memo.retain(|_, id| eq_live[id.0 as usize]);
        self.op_memo.retain(|_, id| op_live[id.0 as usize]);
        // Live nodes may still list dead consumers; prune so upward walks
        // (incremental cost propagation) never enter dead territory. A live
        // eq's own alternative ops are live by construction.
        for (i, eq) in self.eqs.iter_mut().enumerate() {
            if eq_live[i] {
                eq.parents.retain(|op| op_live[op.0 as usize]);
            }
        }
        // Base-table set of the surviving DAG.
        let mut base: Vec<TableId> = Vec::new();
        for (i, eq) in self.eqs.iter().enumerate() {
            if eq_live[i] {
                for t in &eq.base_tables {
                    if let Err(pos) = base.binary_search(t) {
                        base.insert(pos, *t);
                    }
                }
            }
        }
        self.base_tables = base;
    }

    /// Insert an expression without registering a root.
    pub fn insert_expr(&mut self, catalog: &Catalog, expr: &LogicalExpr) -> EqId {
        match self.try_spj(expr) {
            Some((tables, preds)) => self.ensure_spj(catalog, tables, preds),
            None => self.insert_derived(catalog, expr),
        }
    }

    /// Try to read `expr` as a pure SPJ fragment, returning its canonical
    /// (table set, conjunct set).
    fn try_spj(&self, expr: &LogicalExpr) -> Option<(Vec<TableId>, Predicate)> {
        match expr {
            LogicalExpr::Scan { table } => Some((vec![*table], Predicate::true_())),
            LogicalExpr::Select { input, predicate } => {
                let (tables, preds) = self.try_spj(input)?;
                Some((tables, preds.and(predicate)))
            }
            LogicalExpr::Join {
                left,
                right,
                predicate,
            } => {
                let (lt, lp) = self.try_spj(left)?;
                let (rt, rp) = self.try_spj(right)?;
                let mut tables = lt;
                for t in &rt {
                    assert!(
                        !tables.contains(t),
                        "self-joins are not supported: table {t} occurs on both join sides"
                    );
                }
                tables.extend(rt);
                tables.sort_unstable();
                Some((tables, lp.and(&rp).and(predicate)))
            }
            _ => None,
        }
    }

    /// Get-or-create the equivalence node of an SPJ fragment, expanding all
    /// its alternative operations (all binary splits). This is where join
    /// associativity, commutativity (implicitly), and selection pushdown
    /// closure happen.
    pub fn ensure_spj(
        &mut self,
        catalog: &Catalog,
        tables: Vec<TableId>,
        preds: Predicate,
    ) -> EqId {
        debug_assert!(tables.windows(2).all(|w| w[0] < w[1]), "tables sorted");
        let key = SemKey::Spj {
            tables: tables.clone(),
            preds: preds.clone(),
        };
        if let Some(id) = self.eq_memo.get(&key) {
            return *id;
        }
        let schema = spj_schema(catalog, &tables);
        let stats_old = spj_stats(catalog, &tables, &preds, &|t| {
            catalog.table(t).stats.clone()
        });
        let id = self.new_eq(key, schema, tables.clone(), stats_old);

        if tables.len() == 1 {
            let t = tables[0];
            if preds.is_true() {
                self.add_op(OpKind::Scan(t), vec![], id);
            } else {
                let base = self.ensure_spj(catalog, vec![t], Predicate::true_());
                self.add_op(OpKind::Select { pred: preds }, vec![base], id);
            }
        } else {
            // Enumerate all binary splits; the lowest table id is pinned to
            // the left side so each unordered partition is generated once
            // (commutative variants are handled at physical costing).
            let rest = &tables[1..];
            let n = rest.len();
            let all_attrs: Vec<AttrId> = self.eq(id).schema.ids();
            for mask in 0..(1u32 << n) {
                let mut left = vec![tables[0]];
                let mut right = Vec::new();
                for (i, t) in rest.iter().enumerate() {
                    if mask & (1 << i) == 0 {
                        left.push(*t);
                    } else {
                        right.push(*t);
                    }
                }
                if right.is_empty() {
                    continue;
                }
                let left_attrs = side_attrs(catalog, &left);
                let right_attrs = side_attrs(catalog, &right);
                let (left_preds, rest_preds) = preds.split_covered(&left_attrs);
                let (right_preds, join_pred) = rest_preds.split_covered(&right_attrs);
                debug_assert!(
                    join_pred
                        .referenced_attrs()
                        .iter()
                        .all(|a| all_attrs.contains(a)),
                    "join conjuncts must be covered by the union of sides"
                );
                let l = self.ensure_spj(catalog, left, left_preds);
                let r = self.ensure_spj(catalog, right, right_preds);
                self.add_op(OpKind::Join { pred: join_pred }, vec![l, r], id);
            }
        }
        id
    }

    /// Insert a non-SPJ operator node.
    fn insert_derived(&mut self, catalog: &Catalog, expr: &LogicalExpr) -> EqId {
        match expr {
            LogicalExpr::Scan { .. } | LogicalExpr::Join { .. } => unreachable!("handled as SPJ"),
            LogicalExpr::Select { input, predicate } => {
                // Non-SPJ child (e.g. selection over an aggregate).
                let child = self.insert_expr(catalog, input);
                let sig = DerivedSig::Select(predicate.clone());
                self.ensure_derived(
                    sig,
                    vec![child],
                    OpKind::Select {
                        pred: predicate.clone(),
                    },
                    self.eq(child).schema.clone(),
                    stats::derive_select(&self.eq(child).stats_old, predicate),
                )
            }
            LogicalExpr::Project { input, attrs } => {
                let child = self.insert_expr(catalog, input);
                let schema = self.eq(child).schema.select_ids(attrs);
                let st = stats::derive_project(&self.eq(child).stats_old, attrs);
                self.ensure_derived(
                    DerivedSig::Project(attrs.clone()),
                    vec![child],
                    OpKind::Project {
                        attrs: attrs.clone(),
                    },
                    schema,
                    st,
                )
            }
            LogicalExpr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let child = self.insert_expr(catalog, input);
                let (schema, st) = self.aggregate_props(catalog, child, group_by, aggs);
                self.ensure_derived(
                    DerivedSig::Aggregate {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    vec![child],
                    OpKind::Aggregate {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    schema,
                    st,
                )
            }
            LogicalExpr::UnionAll { left, right } => {
                let l = self.insert_expr(catalog, left);
                let r = self.insert_expr(catalog, right);
                let schema = self.eq(l).schema.clone();
                let st = stats::derive_union(&self.eq(l).stats_old, &self.eq(r).stats_old);
                self.ensure_derived(
                    DerivedSig::UnionAll,
                    vec![l, r],
                    OpKind::UnionAll,
                    schema,
                    st,
                )
            }
            LogicalExpr::Minus { left, right } => {
                let l = self.insert_expr(catalog, left);
                let r = self.insert_expr(catalog, right);
                let schema = self.eq(l).schema.clone();
                let st = stats::derive_minus(&self.eq(l).stats_old, &self.eq(r).stats_old);
                self.ensure_derived(DerivedSig::Minus, vec![l, r], OpKind::Minus, schema, st)
            }
            LogicalExpr::Distinct { input } => {
                let child = self.insert_expr(catalog, input);
                let schema = self.eq(child).schema.clone();
                let st = stats::derive_distinct(&self.eq(child).stats_old);
                self.ensure_derived(
                    DerivedSig::Distinct,
                    vec![child],
                    OpKind::Distinct,
                    schema,
                    st,
                )
            }
        }
    }

    /// Schema and stats of an aggregate node.
    pub(crate) fn aggregate_props(
        &self,
        _catalog: &Catalog,
        child: EqId,
        group_by: &[AttrId],
        aggs: &[AggSpec],
    ) -> (Schema, RelStats) {
        let in_schema = &self.eq(child).schema;
        let mut attrs: Vec<Attribute> = group_by
            .iter()
            .map(|g| {
                in_schema
                    .attr(*g)
                    .unwrap_or_else(|| panic!("group attr {g} missing from input"))
                    .clone()
            })
            .collect();
        for a in aggs {
            let in_ty = a
                .input
                .result_type(in_schema)
                .unwrap_or(mvmqo_relalg::types::DataType::Int);
            attrs.push(Attribute {
                id: a.out,
                name: format!("{}_{}", a.func, a.out),
                data_type: a.func.result_type(in_ty),
            });
        }
        let outs: Vec<AttrId> = aggs.iter().map(|a| a.out).collect();
        let st = stats::derive_aggregate(&self.eq(child).stats_old, group_by, &outs);
        (Schema::new(attrs), st)
    }

    /// Get-or-create a derived equivalence node and its defining op.
    pub(crate) fn ensure_derived(
        &mut self,
        sig: DerivedSig,
        children: Vec<EqId>,
        kind: OpKind,
        schema: Schema,
        stats_old: RelStats,
    ) -> EqId {
        let key = SemKey::Derived {
            sig,
            children: children.clone(),
        };
        if let Some(id) = self.eq_memo.get(&key) {
            return *id;
        }
        let mut base: Vec<TableId> = Vec::new();
        for c in &children {
            base.extend(self.eq(*c).base_tables.iter().copied());
        }
        base.sort_unstable();
        base.dedup();
        let id = self.new_eq(key, schema, base, stats_old);
        self.add_op(kind, children, id);
        id
    }

    fn new_eq(
        &mut self,
        key: SemKey,
        schema: Schema,
        base_tables: Vec<TableId>,
        stats_old: RelStats,
    ) -> EqId {
        let id = EqId(self.eqs.len() as u32);
        for t in &base_tables {
            if let Err(pos) = self.base_tables.binary_search(t) {
                self.base_tables.insert(pos, *t);
            }
        }
        self.eq_memo.insert(key.clone(), id);
        self.eqs.push(EqNode {
            id,
            key,
            children: Vec::new(),
            parents: Vec::new(),
            schema,
            base_tables,
            stats_old,
        });
        id
    }

    /// Add an operation under `parent` unless the identical operation
    /// already exists (hashing-based duplicate detection).
    pub(crate) fn add_op(&mut self, kind: OpKind, children: Vec<EqId>, parent: EqId) -> OpId {
        self.add_op_tracked(kind, children, parent).0
    }

    /// [`Dag::add_op`] that also reports whether the op was newly created —
    /// incremental subsumption re-derives over the whole live DAG and must
    /// count only what this pass actually added.
    pub(crate) fn add_op_tracked(
        &mut self,
        kind: OpKind,
        children: Vec<EqId>,
        parent: EqId,
    ) -> (OpId, bool) {
        let memo_key = (kind.clone(), children.clone());
        if let Some(existing) = self.op_memo.get(&memo_key) {
            debug_assert_eq!(
                self.op(*existing).parent,
                parent,
                "identical op under two different equivalence nodes — unification bug"
            );
            return (*existing, false);
        }
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpNode {
            id,
            kind,
            children: children.clone(),
            parent,
        });
        self.op_memo.insert(memo_key, id);
        self.eqs[parent.0 as usize].children.push(id);
        for c in children {
            self.eqs[c.0 as usize].parents.push(id);
        }
        (id, true)
    }

    /// Live equivalence nodes in a bottom-up (children before parents)
    /// order, via Kahn's algorithm. Each entry in an eq node's `parents`
    /// list corresponds to exactly one child slot of the consuming op, so
    /// the parent eq node becomes ready precisely when every child slot of
    /// every one of its alternative ops has been emitted.
    pub fn topo_order(&self) -> Vec<EqId> {
        let n = self.eqs.len();
        let mut indegree = vec![0usize; n];
        for op_id in self.op_ids() {
            let op = self.op(op_id);
            indegree[op.parent.0 as usize] += op.children.len();
        }
        let mut ready: Vec<EqId> = self
            .eq_ids()
            .filter(|e| indegree[e.0 as usize] == 0)
            .collect();
        let mut out = Vec::with_capacity(self.eq_count());
        while let Some(e) = ready.pop() {
            out.push(e);
            for &op_id in &self.eq(e).parents {
                let parent = self.op(op_id).parent;
                indegree[parent.0 as usize] -= 1;
                if indegree[parent.0 as usize] == 0 {
                    ready.push(parent);
                }
            }
        }
        debug_assert_eq!(out.len(), self.eq_count(), "DAG contains a cycle");
        out
    }
}

/// Canonical schema of an SPJ node: concatenation of base-table schemas in
/// table-id order.
pub fn spj_schema(catalog: &Catalog, tables: &[TableId]) -> Schema {
    let mut attrs = Vec::new();
    for t in tables {
        attrs.extend(catalog.table(*t).schema.attrs().iter().cloned());
    }
    Schema::new(attrs)
}

/// All attribute ids provided by a set of base tables.
fn side_attrs(catalog: &Catalog, tables: &[TableId]) -> Vec<AttrId> {
    let mut out = Vec::new();
    for t in tables {
        out.extend(catalog.table(*t).schema.ids());
    }
    out
}

/// Statistics of an SPJ result given a base-stats source — used both for
/// the pre-update state and for every intermediate state of the update
/// sequence (§5.2's "logical properties of the full result after updates
/// 1..i−1 have been propagated").
pub fn spj_stats(
    catalog: &Catalog,
    tables: &[TableId],
    preds: &Predicate,
    base: &dyn Fn(TableId) -> RelStats,
) -> RelStats {
    assert!(!tables.is_empty());
    let mut acc = base(tables[0]);
    let mut seen_attrs = side_attrs(catalog, &tables[..1]);
    // Apply single-table conjuncts as we fold tables in, join conjuncts as
    // soon as both sides are present.
    let (covered, mut remaining) = preds.split_covered(&seen_attrs);
    acc = stats::derive_select(&acc, &covered);
    for t in &tables[1..] {
        let tstats = base(*t);
        let t_attrs = catalog.table(*t).schema.ids();
        let (t_local, rest) = remaining.split_covered(&t_attrs);
        let t_filtered = stats::derive_select(&tstats, &t_local);
        seen_attrs.extend(t_attrs);
        let (joinable, rest2) = rest.split_covered(&seen_attrs);
        acc = stats::derive_join(&acc, &t_filtered, &joinable);
        remaining = rest2;
    }
    debug_assert!(remaining.is_true(), "all conjuncts must be consumed");
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::expr::ScalarExpr;
    use mvmqo_relalg::types::DataType;

    fn abc_catalog() -> (Catalog, TableId, TableId, TableId) {
        let mut c = Catalog::new();
        let a = c.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
            ],
            1000.0,
            &["id"],
        );
        let b = c.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 1000.0),
            ],
            5000.0,
            &["id"],
        );
        let d = c.add_table(
            "c",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 5000.0),
            ],
            20000.0,
            &["id"],
        );
        (c, a, b, d)
    }

    fn three_way_join(c: &Catalog, a: TableId, b: TableId, d: TableId) -> LogicalExpr {
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let b_id = c.table(b).attr("id");
        let c_bid = c.table(d).attr("b_id");
        let ab = LogicalExpr::join(
            LogicalExpr::scan(a),
            LogicalExpr::scan(b),
            Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        );
        LogicalExpr::Join {
            left: ab,
            right: LogicalExpr::scan(d),
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        }
    }

    #[test]
    fn three_way_join_expands_to_all_subsets() {
        let (c, a, b, d) = abc_catalog();
        let mut dag = Dag::new();
        let expr = three_way_join(&c, a, b, d);
        dag.insert_view(&c, "v", &expr);
        // Expanded DAG of Fig 1(c): one eq node per nonempty subset of
        // {A,B,C} = 7 (single-table nodes have no extra select variants
        // here because all conjuncts span two tables).
        assert_eq!(dag.eq_count(), 7);
        // Ops: 3 scans + per 2-subset 1 join + per 3-subset 3 joins = 3+3+3.
        assert_eq!(dag.op_count(), 9);
    }

    #[test]
    fn equivalent_trees_unify_to_one_node() {
        let (c, a, b, d) = abc_catalog();
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let b_id = c.table(b).attr("id");
        let c_bid = c.table(d).attr("b_id");
        // (A ⋈ B) ⋈ C and A ⋈ (B ⋈ C): same canonical key.
        let left_assoc = three_way_join(&c, a, b, d);
        let bc = LogicalExpr::join(
            LogicalExpr::scan(b),
            LogicalExpr::scan(d),
            Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        );
        let right_assoc = LogicalExpr::Join {
            left: LogicalExpr::scan(a),
            right: bc,
            predicate: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        };
        let mut dag = Dag::new();
        let e1 = dag.insert_view(&c, "v1", &left_assoc);
        let e2 = dag.insert_view(&c, "v2", &right_assoc);
        assert_eq!(e1, e2);
    }

    #[test]
    fn shared_subexpressions_across_views_share_nodes() {
        let (c, a, b, d) = abc_catalog();
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let ab = LogicalExpr::join(
            LogicalExpr::scan(a),
            LogicalExpr::scan(b),
            Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        );
        let mut dag = Dag::new();
        let e_ab = dag.insert_view(&c, "v_ab", &ab);
        let full = three_way_join(&c, a, b, d);
        dag.insert_view(&c, "v_abc", &full);
        // The AB node is shared: it must appear as a child of some join op
        // under the ABC root.
        let parents = &dag.eq(e_ab).parents;
        assert!(!parents.is_empty());
    }

    #[test]
    fn selections_are_pushed_into_subset_keys() {
        let (c, a, b, _) = abc_catalog();
        let a_id = c.table(a).attr("id");
        let a_x = c.table(a).attr("x");
        let b_aid = c.table(b).attr("a_id");
        let pred = Predicate::from_conjuncts(vec![
            ScalarExpr::col_eq_col(a_id, b_aid),
            ScalarExpr::col_cmp_lit(a_x, mvmqo_relalg::expr::CmpOp::Eq, 3i64),
        ]);
        let expr = LogicalExpr::Join {
            left: LogicalExpr::scan(a),
            right: LogicalExpr::scan(b),
            predicate: pred,
        };
        let mut dag = Dag::new();
        dag.insert_view(&c, "v", &expr);
        // σ_{x=3}(A) must exist as its own equivalence node.
        let sigma_key = SemKey::Spj {
            tables: vec![a],
            preds: Predicate::from_expr(ScalarExpr::col_cmp_lit(
                a_x,
                mvmqo_relalg::expr::CmpOp::Eq,
                3i64,
            )),
        };
        assert!(dag.lookup(&sigma_key).is_some());
    }

    #[test]
    fn base_tables_and_dependence() {
        let (c, a, b, d) = abc_catalog();
        let mut dag = Dag::new();
        let expr = three_way_join(&c, a, b, d);
        let root = dag.insert_view(&c, "v", &expr);
        assert_eq!(dag.base_tables(), &[a, b, d]);
        assert!(dag.eq(root).depends_on(a));
        let base_a = dag.base_eq(a).unwrap();
        assert!(dag.eq(base_a).is_base_relation());
        assert!(!dag.eq(base_a).depends_on(b));
    }

    #[test]
    fn aggregate_nodes_are_derived_and_unified() {
        let (mut c, a, b, d) = abc_catalog();
        let sum_out = c.fresh_attr();
        let a_x = c.table(a).attr("x");
        let expr = three_way_join(&c, a, b, d);
        let agg = LogicalExpr::Aggregate {
            input: std::sync::Arc::new(expr.clone()),
            group_by: vec![a_x],
            aggs: vec![AggSpec::new(
                mvmqo_relalg::agg::AggFunc::Count,
                ScalarExpr::Col(a_x),
                sum_out,
            )],
        };
        let mut dag = Dag::new();
        let e1 = dag.insert_view(&c, "v1", &agg);
        let e2 = dag.insert_view(&c, "v2", &agg);
        assert_eq!(e1, e2);
        assert_eq!(dag.eq(e1).schema.len(), 2);
    }

    #[test]
    fn topo_order_puts_children_first() {
        let (c, a, b, d) = abc_catalog();
        let mut dag = Dag::new();
        let expr = three_way_join(&c, a, b, d);
        let root = dag.insert_view(&c, "v", &expr);
        let order = dag.topo_order();
        assert_eq!(order.len(), dag.eq_count());
        let pos = |e: EqId| order.iter().position(|x| *x == e).unwrap();
        for op in dag.op_ids().map(|o| dag.op(o)) {
            for child in &op.children {
                assert!(pos(*child) < pos(op.parent));
            }
        }
        assert_eq!(pos(root), order.len() - 1);
    }

    #[test]
    #[should_panic(expected = "self-joins")]
    fn self_join_is_rejected() {
        let (c, a, _, _) = abc_catalog();
        let expr = LogicalExpr::Join {
            left: LogicalExpr::scan(a),
            right: LogicalExpr::scan(a),
            predicate: Predicate::true_(),
        };
        let mut dag = Dag::new();
        dag.insert_view(&c, "v", &expr);
    }

    #[test]
    fn remove_view_garbage_collects_unshared_nodes() {
        let (c, a, b, d) = abc_catalog();
        let mut dag = Dag::new();
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let ab = LogicalExpr::join(
            LogicalExpr::scan(a),
            LogicalExpr::scan(b),
            Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
        );
        dag.insert_view(&c, "v_ab", &ab);
        let (eqs_before, ops_before) = (dag.eq_count(), dag.op_count());
        dag.insert_view(&c, "v_abc", &three_way_join(&c, a, b, d));
        assert!(dag.eq_count() > eqs_before);
        let root = dag.remove_view("v_abc").expect("root exists");
        assert!(!dag.eq_is_live(root));
        // Counts restored; v_ab's nodes survive and stay in the memo.
        assert_eq!(dag.eq_count(), eqs_before);
        assert_eq!(dag.op_count(), ops_before);
        assert_eq!(dag.roots().len(), 1);
        assert_eq!(dag.base_tables(), &[a, b]);
        // Tombstones stay in the arena but out of iteration.
        assert!(dag.eq_arena_size() > dag.eq_count());
        assert_eq!(dag.eq_ids().count(), dag.eq_count());
        assert_eq!(dag.topo_order().len(), dag.eq_count());
        // Live survivors no longer list dead consumers.
        for e in dag.eq_ids() {
            for op in &dag.eq(e).parents {
                assert!(dag.op_is_live(*op));
            }
        }
        // The C-subset key was swept: re-adding creates fresh live nodes.
        let again = dag.insert_view(&c, "v_abc2", &three_way_join(&c, a, b, d));
        assert!(dag.eq_is_live(again));
        assert_ne!(again, root);
    }

    #[test]
    fn remove_view_keeps_nodes_shared_with_surviving_roots() {
        let (c, a, b, d) = abc_catalog();
        let mut dag = Dag::new();
        let full = three_way_join(&c, a, b, d);
        let e1 = dag.insert_view(&c, "v1", &full);
        let e2 = dag.insert_view(&c, "v2", &full);
        assert_eq!(e1, e2);
        dag.remove_view("v1").unwrap();
        // Shared root survives entirely.
        assert!(dag.eq_is_live(e2));
        assert_eq!(dag.eq_count(), 7);
        assert_eq!(dag.roots().len(), 1);
    }

    #[test]
    fn remove_unknown_view_is_none() {
        let (c, a, b, d) = abc_catalog();
        let mut dag = Dag::new();
        dag.insert_view(&c, "v", &three_way_join(&c, a, b, d));
        assert!(dag.remove_view("ghost").is_none());
        assert_eq!(dag.roots().len(), 1);
    }

    #[test]
    fn spj_stats_apply_local_and_join_conjuncts() {
        let (c, a, b, _) = abc_catalog();
        let a_id = c.table(a).attr("id");
        let a_x = c.table(a).attr("x");
        let b_aid = c.table(b).attr("a_id");
        let preds = Predicate::from_conjuncts(vec![
            ScalarExpr::col_eq_col(a_id, b_aid),
            ScalarExpr::col_cmp_lit(a_x, mvmqo_relalg::expr::CmpOp::Eq, 1i64),
        ]);
        let st = spj_stats(&c, &[a, b], &preds, &|t| c.table(t).stats.clone());
        // |A|/50 rows of A survive the filter; FK-like join with B gives
        // 5000/50 = 100.
        assert!((st.rows - 100.0).abs() < 1.0);
    }
}
