//! Subsumption derivations (§4.2).
//!
//! After all views are inserted, the DAG is augmented with *derivation*
//! operations that compute one node from a more general one:
//!
//! * **Selections.** σ_{A<5}(E) can be computed from σ_{A<10}(E). We add a
//!   derivation for every pair of SPJ nodes over the same table set whose
//!   applied conjunct sets are related by (a) set inclusion (the subsumed
//!   node re-applies the missing conjuncts) or (b) single-conjunct range
//!   implication on the same attribute.
//! * **Aggregates.** Given ᵈⁿᵒG_{sum(sal)}(E) and ᵃᵍᵉG_{sum(sal)}(E), a new
//!   node ᵈⁿᵒ'ᵃᵍᵉG_{sum(sal)}(E) is introduced and both originals gain
//!   derivations that re-aggregate it (SUM of partial SUMs, SUM of partial
//!   COUNTs, MIN of MINs, MAX of MAXs). AVG is not distributive on its own
//!   and is left underived.

use crate::dag::build::Dag;
use crate::dag::node::{DerivedSig, EqId, OpKind, SemKey};
use mvmqo_relalg::agg::{AggFunc, AggSpec};
use mvmqo_relalg::catalog::Catalog;
use mvmqo_relalg::expr::{CmpOp, Predicate, ScalarExpr};
use mvmqo_relalg::schema::AttrId;
use mvmqo_relalg::types::Value;
use std::collections::{HashMap, HashSet};

/// Statistics of what subsumption added (surfaced in optimizer reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubsumptionReport {
    pub select_derivations: usize,
    pub range_derivations: usize,
    pub aggregate_rollups: usize,
    pub introduced_group_nodes: usize,
}

impl SubsumptionReport {
    /// Fold another pass's additions into a cumulative report (the
    /// re-entrant session accumulates one report across view insertions).
    pub fn absorb(&mut self, other: SubsumptionReport) {
        self.select_derivations += other.select_derivations;
        self.range_derivations += other.range_derivations;
        self.aggregate_rollups += other.aggregate_rollups;
        self.introduced_group_nodes += other.introduced_group_nodes;
    }
}

/// Persistent subsumption bookkeeping for an incrementally grown DAG.
///
/// Select/range derivations are naturally idempotent (re-deriving an
/// existing op hits the op memo), but aggregate roll-ups mint fresh output
/// attributes for the introduced union-grouping node — re-considering a
/// pair would create a *different* node each pass. The state remembers
/// which aggregate pairs have been examined.
#[derive(Debug, Clone, Default)]
pub struct SubsumeState {
    rollup_pairs: HashSet<(EqId, EqId)>,
    /// Union-grouping nodes this machinery introduced. They never pair
    /// with later aggregates (matching the one-shot pass, which collects
    /// candidates before creating any union node) — without this, every
    /// incremental pass would stack roll-ups of roll-ups.
    introduced: HashSet<EqId>,
}

impl SubsumeState {
    /// Drop bookkeeping for pairs involving garbage-collected nodes, so a
    /// re-added aggregate view gets its roll-ups re-derived.
    pub fn prune_dead(&mut self, dag: &Dag) {
        self.rollup_pairs
            .retain(|(a, b)| dag.eq_is_live(*a) && dag.eq_is_live(*b));
        self.introduced.retain(|e| dag.eq_is_live(*e));
    }

    fn pair_key(a: EqId, b: EqId) -> (EqId, EqId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// Add every applicable subsumption derivation to the DAG (one-shot form).
pub fn add_subsumption_derivations(dag: &mut Dag, catalog: &mut Catalog) -> SubsumptionReport {
    let mut state = SubsumeState::default();
    add_subsumption_derivations_incremental(dag, catalog, &mut state, EqId(0))
}

/// Derive the subsumptions a grown DAG is missing. Safe to call after
/// every view insertion: only pairs involving a node with id ≥ `first_new`
/// are considered (older pairs were examined by an earlier pass), existing
/// derivations hit the op memo, and `state` prevents aggregate pairs from
/// being rolled up twice. Returns only this pass's additions.
pub fn add_subsumption_derivations_incremental(
    dag: &mut Dag,
    catalog: &mut Catalog,
    state: &mut SubsumeState,
    first_new: EqId,
) -> SubsumptionReport {
    let mut report = SubsumptionReport::default();
    add_select_derivations(dag, first_new, &mut report);
    add_aggregate_rollups(dag, catalog, state, first_new, &mut report);
    report
}

fn add_select_derivations(dag: &mut Dag, first_new: EqId, report: &mut SubsumptionReport) {
    // Group SPJ nodes by table set.
    let mut groups: HashMap<Vec<mvmqo_relalg::catalog::TableId>, Vec<(EqId, Predicate)>> =
        HashMap::new();
    for id in dag.eq_ids() {
        if let SemKey::Spj { tables, preds } = &dag.eq(id).key {
            groups
                .entry(tables.clone())
                .or_default()
                .push((id, preds.clone()));
        }
    }
    // (target, source, reapply predicate, is_range)
    let mut to_add: Vec<(EqId, EqId, Predicate, bool)> = Vec::new();
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        if members.iter().all(|(id, _)| *id < first_new) {
            continue; // every pair here was examined by an earlier pass
        }
        for (target, tp) in members {
            for (source, sp) in members {
                if target == source || (*target < first_new && *source < first_new) {
                    continue;
                }
                // (a) Set inclusion: source's conjuncts ⊂ target's.
                if is_strict_subset(sp, tp) {
                    let missing = difference(tp, sp);
                    to_add.push((*target, *source, missing, false));
                    continue;
                }
                // (b) Range implication on a single differing conjunct.
                if let Some((c_target, c_source)) = single_conjunct_difference(tp, sp) {
                    if implies(&c_target, &c_source) && !implies(&c_source, &c_target) {
                        to_add.push((
                            *target,
                            *source,
                            Predicate::from_conjuncts(vec![c_target]),
                            true,
                        ));
                    }
                }
            }
        }
    }
    for (target, source, pred, is_range) in to_add {
        // Derivations found on earlier incremental passes hit the op memo;
        // count only what this pass adds.
        let (_, new) = dag.add_op_tracked(OpKind::Select { pred }, vec![source], target);
        if new {
            if is_range {
                report.range_derivations += 1;
            } else {
                report.select_derivations += 1;
            }
        }
    }
}

/// True if every conjunct of `a` appears in `b` and `b` has strictly more.
fn is_strict_subset(a: &Predicate, b: &Predicate) -> bool {
    a.conjuncts().len() < b.conjuncts().len()
        && a.conjuncts().iter().all(|c| b.conjuncts().contains(c))
}

/// Conjuncts of `a` not present in `b`.
fn difference(a: &Predicate, b: &Predicate) -> Predicate {
    Predicate::from_conjuncts(
        a.conjuncts()
            .iter()
            .filter(|c| !b.conjuncts().contains(c))
            .cloned()
            .collect(),
    )
}

/// If `a` and `b` share all conjuncts except exactly one each, return that
/// differing pair `(a_only, b_only)`.
fn single_conjunct_difference(a: &Predicate, b: &Predicate) -> Option<(ScalarExpr, ScalarExpr)> {
    let a_only: Vec<_> = a
        .conjuncts()
        .iter()
        .filter(|c| !b.conjuncts().contains(c))
        .cloned()
        .collect();
    let b_only: Vec<_> = b
        .conjuncts()
        .iter()
        .filter(|c| !a.conjuncts().contains(c))
        .cloned()
        .collect();
    if a_only.len() == 1 && b_only.len() == 1 {
        Some((
            a_only.into_iter().next().unwrap(),
            b_only.into_iter().next().unwrap(),
        ))
    } else {
        None
    }
}

/// Does range conjunct `p` logically imply `q`? Both must be single-attr
/// comparisons against literals on the same attribute.
pub fn implies(p: &ScalarExpr, q: &ScalarExpr) -> bool {
    let parse = |e: &ScalarExpr| -> Option<(AttrId, CmpOp, Value)> {
        Predicate::from_conjuncts(vec![e.clone()]).as_single_attr_range()
    };
    let (Some((pa, pop, pv)), Some((qa, qop, qv))) = (parse(p), parse(q)) else {
        return false;
    };
    if pa != qa {
        return false;
    }
    use CmpOp::*;
    match (pop, qop) {
        // Upper bounds: x < v / x <= v.
        (Lt, Lt) | (Le, Le) => pv <= qv,
        (Lt, Le) => pv <= qv,
        (Le, Lt) => pv < qv,
        // Lower bounds.
        (Gt, Gt) | (Ge, Ge) => pv >= qv,
        (Gt, Ge) => pv >= qv,
        (Ge, Gt) => pv > qv,
        // Point implies ranges containing it.
        (Eq, Lt) => pv < qv,
        (Eq, Le) => pv <= qv,
        (Eq, Gt) => pv > qv,
        (Eq, Ge) => pv >= qv,
        (Eq, Eq) => pv == qv,
        (Eq, Ne) => pv != qv,
        _ => false,
    }
}

/// (aggregate node, group-by attrs, agg specs) collected per shared input.
type AggNodesByChild = HashMap<EqId, Vec<(EqId, Vec<AttrId>, Vec<AggSpec>)>>;

fn add_aggregate_rollups(
    dag: &mut Dag,
    catalog: &mut Catalog,
    state: &mut SubsumeState,
    first_new: EqId,
    report: &mut SubsumptionReport,
) {
    // Collect aggregate nodes grouped by input child (introduced
    // union-grouping nodes excluded — see `SubsumeState::introduced`).
    let mut by_child: AggNodesByChild = HashMap::new();
    for id in dag.eq_ids() {
        if state.introduced.contains(&id) {
            continue;
        }
        if let SemKey::Derived {
            sig: DerivedSig::Aggregate { group_by, aggs },
            children,
        } = &dag.eq(id).key
        {
            by_child
                .entry(children[0])
                .or_default()
                .push((id, group_by.clone(), aggs.clone()));
        }
    }
    for (child, nodes) in by_child {
        if nodes.len() < 2 {
            continue;
        }
        // Pairwise roll-ups; distributive aggregates only.
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let (e1, g1, a1) = &nodes[i];
                let (e2, g2, a2) = &nodes[j];
                if *e1 < first_new && *e2 < first_new {
                    continue; // both pre-date this pass
                }
                if !state.rollup_pairs.insert(SubsumeState::pair_key(*e1, *e2)) {
                    continue; // pair already examined on an earlier pass
                }
                if g1 == g2 {
                    continue; // same grouping with different specs — no roll-up needed
                }
                if !a1.iter().chain(a2.iter()).all(|s| is_distributive(s.func)) {
                    continue;
                }
                // Union group set.
                let mut gu: Vec<AttrId> = g1.iter().chain(g2.iter()).copied().collect();
                gu.sort_unstable();
                gu.dedup();
                if gu == *g1 || gu == *g2 {
                    // One grouping refines the other: derive the coarser
                    // directly from the finer — no new node needed.
                    let (coarse, fine, coarse_specs, fine_specs) = if gu == *g1 {
                        (e2, e1, a2, a1)
                    } else {
                        (e1, e2, a1, a2)
                    };
                    if let Some(specs) = rollup_specs(coarse_specs, fine_specs, dag, *fine) {
                        let group_by = if gu == *g1 { g2.clone() } else { g1.clone() };
                        dag.add_op(
                            OpKind::Aggregate {
                                group_by,
                                aggs: specs,
                            },
                            vec![*fine],
                            *coarse,
                        );
                        report.aggregate_rollups += 1;
                    }
                    continue;
                }
                // Introduce the union-grouping node with fresh outputs, one
                // per distinct (func, input) pair across both originals.
                let mut union_specs: Vec<AggSpec> = Vec::new();
                let mut spec_of: HashMap<(AggFunc, ScalarExpr), AttrId> = HashMap::new();
                for s in a1.iter().chain(a2.iter()) {
                    let k = (base_func(s.func), s.input.clone());
                    if !spec_of.contains_key(&k) {
                        let out = catalog.fresh_attr();
                        spec_of.insert(k.clone(), out);
                        union_specs.push(AggSpec::new(k.0, k.1.clone(), out));
                    }
                }
                let (schema, stats) = dag.aggregate_props(catalog, child, &gu, &union_specs);
                let union_node = dag.ensure_derived(
                    DerivedSig::Aggregate {
                        group_by: gu.clone(),
                        aggs: union_specs.clone(),
                    },
                    vec![child],
                    OpKind::Aggregate {
                        group_by: gu.clone(),
                        aggs: union_specs.clone(),
                    },
                    schema,
                    stats,
                );
                state.introduced.insert(union_node);
                report.introduced_group_nodes += 1;
                for (e, g, specs) in [(e1, g1, a1), (e2, g2, a2)] {
                    let derived: Vec<AggSpec> = specs
                        .iter()
                        .map(|s| {
                            let src = spec_of[&(base_func(s.func), s.input.clone())];
                            AggSpec::new(reagg_func(s.func), ScalarExpr::Col(src), s.out)
                        })
                        .collect();
                    dag.add_op(
                        OpKind::Aggregate {
                            group_by: g.clone(),
                            aggs: derived,
                        },
                        vec![union_node],
                        *e,
                    );
                    report.aggregate_rollups += 1;
                }
            }
        }
    }
}

/// Roll-up specs for deriving a coarser aggregation directly from a finer
/// one over the same input. Returns `None` if any output of the finer node
/// needed by the coarser is missing.
fn rollup_specs(
    coarse_specs: &[AggSpec],
    fine_specs: &[AggSpec],
    _dag: &Dag,
    _fine: EqId,
) -> Option<Vec<AggSpec>> {
    coarse_specs
        .iter()
        .map(|c| {
            fine_specs
                .iter()
                .find(|f| base_func(f.func) == base_func(c.func) && f.input == c.input)
                .map(|f| AggSpec::new(reagg_func(c.func), ScalarExpr::Col(f.out), c.out))
        })
        .collect()
}

/// Distributive aggregates that support roll-up.
fn is_distributive(f: AggFunc) -> bool {
    matches!(
        f,
        AggFunc::Sum | AggFunc::Count | AggFunc::Min | AggFunc::Max
    )
}

/// The partial-aggregate function stored at the finer level.
fn base_func(f: AggFunc) -> AggFunc {
    f
}

/// The function that combines partials at the coarser level:
/// COUNT of partials becomes SUM of partial counts.
fn reagg_func(f: AggFunc) -> AggFunc {
    match f {
        AggFunc::Count => AggFunc::Sum,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    fn setup() -> (Catalog, mvmqo_relalg::catalog::TableId) {
        let mut c = Catalog::new();
        let t = c.add_table(
            "t",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_range("x", DataType::Int, 100.0, (0.0, 100.0)),
                ColumnSpec::with_distinct("g", DataType::Int, 10.0),
                ColumnSpec::with_distinct("h", DataType::Int, 20.0),
            ],
            10_000.0,
            &["id"],
        );
        (c, t)
    }

    #[test]
    fn range_implication_table() {
        let a = AttrId(0);
        let lt5 = ScalarExpr::col_cmp_lit(a, CmpOp::Lt, 5i64);
        let lt10 = ScalarExpr::col_cmp_lit(a, CmpOp::Lt, 10i64);
        let le5 = ScalarExpr::col_cmp_lit(a, CmpOp::Le, 5i64);
        let gt3 = ScalarExpr::col_cmp_lit(a, CmpOp::Gt, 3i64);
        let eq4 = ScalarExpr::col_cmp_lit(a, CmpOp::Eq, 4i64);
        assert!(implies(&lt5, &lt10));
        assert!(!implies(&lt10, &lt5));
        assert!(implies(&lt5, &le5));
        assert!(!implies(&le5, &lt5));
        assert!(implies(&eq4, &lt5));
        assert!(implies(&eq4, &gt3));
        assert!(!implies(&eq4, &ScalarExpr::col_cmp_lit(a, CmpOp::Gt, 4i64)));
        // Different attributes never imply.
        let other = ScalarExpr::col_cmp_lit(AttrId(1), CmpOp::Lt, 10i64);
        assert!(!implies(&lt5, &other));
    }

    #[test]
    fn select_subsumption_adds_derivation() {
        let (mut c, t) = setup();
        let x = c.table(t).attr("x");
        let v5 = LogicalExpr::select(
            LogicalExpr::scan(t),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(x, CmpOp::Lt, 5i64)),
        );
        let v10 = LogicalExpr::select(
            LogicalExpr::scan(t),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(x, CmpOp::Lt, 10i64)),
        );
        let mut dag = Dag::new();
        let e5 = dag.insert_view(&c, "v5", &v5);
        let e10 = dag.insert_view(&c, "v10", &v10);
        let before = dag.op_count();
        let report = add_subsumption_derivations(&mut dag, &mut c);
        assert_eq!(report.range_derivations, 1);
        assert_eq!(dag.op_count(), before + 1);
        // The new op computes e5 from e10.
        let new_op = dag
            .eq(e5)
            .children
            .iter()
            .map(|o| dag.op(*o))
            .find(|o| o.children.contains(&e10));
        assert!(new_op.is_some());
    }

    #[test]
    fn subset_subsumption_reapplies_missing_conjuncts() {
        let (mut c, t) = setup();
        let x = c.table(t).attr("x");
        let g = c.table(t).attr("g");
        let narrow = LogicalExpr::select(
            LogicalExpr::scan(t),
            Predicate::from_conjuncts(vec![
                ScalarExpr::col_cmp_lit(x, CmpOp::Lt, 5i64),
                ScalarExpr::col_cmp_lit(g, CmpOp::Eq, 1i64),
            ]),
        );
        let wide = LogicalExpr::select(
            LogicalExpr::scan(t),
            Predicate::from_expr(ScalarExpr::col_cmp_lit(x, CmpOp::Lt, 5i64)),
        );
        let mut dag = Dag::new();
        dag.insert_view(&c, "narrow", &narrow);
        dag.insert_view(&c, "wide", &wide);
        let report = add_subsumption_derivations(&mut dag, &mut c);
        assert!(report.select_derivations >= 1);
    }

    #[test]
    fn aggregate_rollup_introduces_union_grouping_node() {
        let (mut c, t) = setup();
        let g = c.table(t).attr("g");
        let h = c.table(t).attr("h");
        let x = c.table(t).attr("x");
        let o1 = c.fresh_attr();
        let o2 = c.fresh_attr();
        let by_g = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![g],
            vec![AggSpec::new(AggFunc::Sum, ScalarExpr::Col(x), o1)],
        );
        let by_h = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![h],
            vec![AggSpec::new(AggFunc::Sum, ScalarExpr::Col(x), o2)],
        );
        let mut dag = Dag::new();
        let e1 = dag.insert_view(&c, "by_g", &by_g);
        let e2 = dag.insert_view(&c, "by_h", &by_h);
        let eq_before = dag.eq_count();
        let report = add_subsumption_derivations(&mut dag, &mut c);
        assert_eq!(report.introduced_group_nodes, 1);
        assert_eq!(report.aggregate_rollups, 2);
        assert_eq!(dag.eq_count(), eq_before + 1);
        // Both originals now have a second alternative op.
        assert_eq!(dag.eq(e1).children.len(), 2);
        assert_eq!(dag.eq(e2).children.len(), 2);
    }

    #[test]
    fn refinement_rollup_derives_coarse_from_fine() {
        let (mut c, t) = setup();
        let g = c.table(t).attr("g");
        let h = c.table(t).attr("h");
        let x = c.table(t).attr("x");
        let o1 = c.fresh_attr();
        let o2 = c.fresh_attr();
        let fine = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![g, h],
            vec![AggSpec::new(AggFunc::Count, ScalarExpr::Col(x), o1)],
        );
        let coarse = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![g],
            vec![AggSpec::new(AggFunc::Count, ScalarExpr::Col(x), o2)],
        );
        let mut dag = Dag::new();
        let e_fine = dag.insert_view(&c, "fine", &fine);
        let e_coarse = dag.insert_view(&c, "coarse", &coarse);
        let report = add_subsumption_derivations(&mut dag, &mut c);
        assert_eq!(report.introduced_group_nodes, 0);
        assert_eq!(report.aggregate_rollups, 1);
        // COUNT rolls up as SUM of partial counts.
        let rollup = dag
            .eq(e_coarse)
            .children
            .iter()
            .map(|o| dag.op(*o))
            .find(|o| o.children.contains(&e_fine))
            .expect("rollup derivation present");
        if let OpKind::Aggregate { aggs, .. } = &rollup.kind {
            assert_eq!(aggs[0].func, AggFunc::Sum);
        } else {
            panic!("expected aggregate rollup op");
        }
    }

    #[test]
    fn avg_blocks_rollup() {
        let (mut c, t) = setup();
        let g = c.table(t).attr("g");
        let h = c.table(t).attr("h");
        let x = c.table(t).attr("x");
        let o1 = c.fresh_attr();
        let o2 = c.fresh_attr();
        let v1 = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![g],
            vec![AggSpec::new(AggFunc::Avg, ScalarExpr::Col(x), o1)],
        );
        let v2 = LogicalExpr::aggregate(
            LogicalExpr::scan(t),
            vec![h],
            vec![AggSpec::new(AggFunc::Avg, ScalarExpr::Col(x), o2)],
        );
        let mut dag = Dag::new();
        dag.insert_view(&c, "v1", &v1);
        dag.insert_view(&c, "v2", &v2);
        let report = add_subsumption_derivations(&mut dag, &mut c);
        assert_eq!(report.introduced_group_nodes, 0);
        assert_eq!(report.aggregate_rollups, 0);
    }
}
