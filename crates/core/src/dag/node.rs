//! AND-OR DAG node types.
//!
//! Following §4 of the paper: *equivalence nodes* (OR-nodes) represent a set
//! of logical expressions producing the same result; *operation nodes*
//! (AND-nodes) represent one algebraic operation whose inputs are equivalence
//! nodes. Every operation node has exactly one parent equivalence node; an
//! equivalence node may be input to many operation nodes.

use mvmqo_relalg::agg::AggSpec;
use mvmqo_relalg::catalog::TableId;
use mvmqo_relalg::expr::Predicate;
use mvmqo_relalg::schema::{AttrId, Schema};
use mvmqo_relalg::stats::RelStats;
use std::fmt;

/// Identifies an equivalence (OR) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EqId(pub u32);

impl fmt::Display for EqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifies an operation (AND) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The algebraic operation of an operation node. Children (equivalence-node
/// inputs) are stored on the [`OpNode`], not here, so `OpKind` is the
/// hashable "what does it compute" part of the op signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Scan of a base table (leaf; relation scans are explicit operations
    /// with a cost, per §5.1 footnote 4).
    Scan(TableId),
    /// Multiset selection.
    Select { pred: Predicate },
    /// Multiset projection.
    Project { attrs: Vec<AttrId> },
    /// Inner join; `pred` holds only the conjuncts spanning both inputs
    /// (side-local conjuncts are pushed into the child equivalence nodes'
    /// keys). An empty predicate is a cross product.
    Join { pred: Predicate },
    /// Group-by aggregation.
    Aggregate {
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
    },
    /// Additive multiset union.
    UnionAll,
    /// Multiset difference (monus); children are ordered.
    Minus,
    /// Duplicate elimination.
    Distinct,
}

impl OpKind {
    /// Short operator name for display/tracing.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Scan(_) => "Scan",
            OpKind::Select { .. } => "Select",
            OpKind::Project { .. } => "Project",
            OpKind::Join { .. } => "Join",
            OpKind::Aggregate { .. } => "Aggregate",
            OpKind::UnionAll => "UnionAll",
            OpKind::Minus => "Minus",
            OpKind::Distinct => "Distinct",
        }
    }
}

/// An operation (AND) node.
#[derive(Debug, Clone)]
pub struct OpNode {
    pub id: OpId,
    pub kind: OpKind,
    /// Input equivalence nodes. Join children are stored in canonical
    /// order (the side containing the smallest base table first); physical
    /// costing considers both operand roles, which is how the paper leaves
    /// commutativity implicit (Figure 1 caption).
    pub children: Vec<EqId>,
    /// The equivalence node this operation computes.
    pub parent: EqId,
}

/// Semantic key of an equivalence node — the identity that hashing-based
/// duplicate detection and unification (§4.2) compare.
///
/// For the select-project-join fragment the key is *(base-table set, applied
/// predicate)*: every reordering/pushdown variant of the same SPJ expression
/// has the same key, so equivalent nodes are unified eagerly at construction.
/// Other operators key on their parameters plus the canonical ids of their
/// children.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SemKey {
    /// Select-project-join fragment over a set of base tables with a set of
    /// applied conjuncts (both canonically ordered).
    Spj {
        tables: Vec<TableId>,
        preds: Predicate,
    },
    /// Non-SPJ operator applied to canonical children.
    Derived {
        sig: DerivedSig,
        children: Vec<EqId>,
    },
}

/// The parameter part of a non-SPJ operator's key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DerivedSig {
    Select(Predicate),
    Project(Vec<AttrId>),
    Aggregate {
        group_by: Vec<AttrId>,
        aggs: Vec<AggSpec>,
    },
    UnionAll,
    Minus,
    Distinct,
}

/// An equivalence (OR) node.
#[derive(Debug, Clone)]
pub struct EqNode {
    pub id: EqId,
    pub key: SemKey,
    /// Alternative operations computing this result.
    pub children: Vec<OpId>,
    /// Operations that consume this result (for upward cost propagation —
    /// the incremental cost update of §6.2 walks these edges).
    pub parents: Vec<OpId>,
    /// Output schema in canonical attribute order.
    pub schema: Schema,
    /// Base tables this node depends on (sorted). A node's differential
    /// w.r.t. updates on a relation outside this set is empty (§5.2).
    pub base_tables: Vec<TableId>,
    /// Statistics of the result in the *pre-update* database state.
    pub stats_old: RelStats,
}

impl EqNode {
    /// True if this node *is* a base relation (scan result, no predicate).
    pub fn is_base_relation(&self) -> bool {
        matches!(
            &self.key,
            SemKey::Spj { tables, preds } if tables.len() == 1 && preds.is_true()
        )
    }

    /// True if the node depends on `table`.
    pub fn depends_on(&self, table: TableId) -> bool {
        self.base_tables.binary_search(&table).is_ok()
    }

    /// The single base table, when this is a base relation node.
    pub fn as_base_table(&self) -> Option<TableId> {
        if self.is_base_relation() {
            match &self.key {
                SemKey::Spj { tables, .. } => Some(tables[0]),
                _ => None,
            }
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semkey_spj_equality_ignores_construction_order() {
        // Keys are built from canonically sorted parts, so two equal sets
        // compare equal however they were assembled.
        let k1 = SemKey::Spj {
            tables: vec![TableId(1), TableId(2)],
            preds: Predicate::true_(),
        };
        let k2 = SemKey::Spj {
            tables: vec![TableId(1), TableId(2)],
            preds: Predicate::true_(),
        };
        assert_eq!(k1, k2);
    }

    #[test]
    fn opkind_names() {
        assert_eq!(OpKind::Scan(TableId(0)).name(), "Scan");
        assert_eq!(OpKind::UnionAll.name(), "UnionAll");
        assert_eq!(
            OpKind::Select {
                pred: Predicate::true_()
            }
            .name(),
            "Select"
        );
    }

    #[test]
    fn ids_are_ordered_and_display() {
        assert!(EqId(1) < EqId(2));
        assert!(OpId(0) < OpId(5));
        assert_eq!(EqId(3).to_string(), "e3");
        assert_eq!(OpId(4).to_string(), "o4");
    }
}
