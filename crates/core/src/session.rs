//! The re-entrant optimizer session.
//!
//! The paper runs its §4–§6 machinery once, offline: build the AND-OR DAG,
//! compute differential properties, greedily select extra materializations.
//! A continuously running warehouse re-plans every time the view set or the
//! statistics drift — and paying the full pipeline on every trigger makes
//! optimization time itself the bottleneck as view sets grow (§7.5).
//!
//! [`Optimizer`] keeps the whole pipeline state alive between plans:
//!
//! * the **DAG** is an incrementally extensible arena — [`Optimizer::add_view`]
//!   unifies a new view's expressions into the existing DAG (reusing every
//!   eq/op node and subsumption derivation the memo already holds) and
//!   [`Optimizer::remove_view`] detaches the root and garbage-collects what
//!   is no longer reachable;
//! * the **differential properties** and the cost engine's **memo slots**
//!   survive across plans — statistics drift recomputes only the properties
//!   of nodes depending on the drifted tables, and dirty-bit propagation up
//!   the DAG re-costs only the slots those changes invalidate;
//! * the **greedy selection is warm-started** from the previous plan: the
//!   prior selection is revalidated in place (demoting picks the changed
//!   problem no longer justifies), and the benefit heap is seeded with
//!   cached benefits so unchanged candidates are not re-costed — the lazy
//!   (monotonicity) loop re-evaluates a candidate before committing it, so
//!   a stale seed costs at most one extra evaluation.
//!
//! The first [`Optimizer::plan`] is a cold build; subsequent plans after
//! `add_view` / `remove_view` / [`Optimizer::set_update_model`] pay
//! incremental cost. One deliberate approximation: pure statistics drift
//! (same update numbering, different batch-size estimates) re-seeds the
//! heap with the cached benefits rather than re-evaluating every candidate
//! — a candidate whose benefit was negative before the drift and would
//! have turned positive can be missed. Drift is bounded by the re-plan
//! policy (a quarter of the base rows by default), and the optimization-
//! time benchmark (`figures opt-bench`) checks selected-plan cost against
//! a cold replan on every run.

use crate::api::{summarize, OptimizerReport};
use crate::cost::CostModel;
use crate::dag::{
    add_subsumption_derivations_incremental, Dag, EqId, SubsumeState, SubsumptionReport,
};
use crate::opt::{
    run_greedy_warm, Candidate, CostEngine, GreedyOptions, MatSet, SavedMemo, StoredRef, WarmStart,
};
use crate::plan::extract_program;
use crate::update::UpdateModel;
use mvmqo_relalg::catalog::{Catalog, TableId};
use mvmqo_relalg::logical::ViewDef;
use mvmqo_relalg::schema::AttrId;
use std::collections::HashSet;
use std::time::Instant;

/// How a [`Optimizer::plan`] call obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Full pipeline: DAG-wide property computation, memo recompute, every
    /// candidate's benefit evaluated.
    Cold,
    /// Persisted state reused; only dirtied properties, slots, and benefits
    /// re-derived.
    Incremental,
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanMode::Cold => f.write_str("cold"),
            PlanMode::Incremental => f.write_str("incremental"),
        }
    }
}

/// What one [`Optimizer::plan`] call produced.
#[derive(Debug)]
pub struct PlanOutcome {
    pub report: OptimizerReport,
    pub mode: PlanMode,
}

/// A persistent optimizer session (see the module docs). `Clone` forks
/// the whole session state — useful for what-if planning against the
/// same warmed-up memo.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    dag: Dag,
    subsume_state: SubsumeState,
    /// Cumulative over the DAG's whole life (derivations of since-removed
    /// views included).
    subsumption: SubsumptionReport,
    updates: UpdateModel,
    cost_model: CostModel,
    options: GreedyOptions,
    initial_indices: Vec<(TableId, AttrId)>,
    mats: MatSet,
    props: Option<crate::diff::DiffProps>,
    memo: Option<SavedMemo>,
    warm: WarmStart,
    /// Nodes whose memo slots must be recomputed at the next plan (new
    /// nodes, nodes that gained alternatives, nodes whose physical-design
    /// inputs — materializations, indices — changed under them).
    dirty: HashSet<EqId>,
    /// Surviving nodes whose cached *benefits* (not slots) went stale —
    /// e.g. descendants of a removed view root that lost sharing.
    benefit_stale: HashSet<EqId>,
    /// Structural seeds for benefit staleness: genuinely new nodes and
    /// nodes whose physical-design membership changed. Narrower than
    /// `dirty` — a node that merely gained an alternative whose slot value
    /// did not move leaves benefits below it intact (materialization only
    /// ever lowers other paths' costs, so an alternative that loses at
    /// rest keeps losing under any trial outside its own cone).
    seed_dirty: HashSet<EqId>,
    /// Tables whose update-model row estimates changed since the last plan.
    drift_tables: Vec<TableId>,
    /// Catalog base-table row counts the persisted properties were computed
    /// against — a caller that refreshes catalog statistics between plans
    /// (the warehouse folds live row counts in before every replan) gets
    /// the affected tables picked up as drift automatically.
    last_base_rows: std::collections::HashMap<TableId, f64>,
    /// True when some base table's catalog row count moved by more than
    /// ~10% since the last plan. The trust-the-cached-benefits drift
    /// approximation is justified only for bounded drift; a severe shift
    /// falls back to fresh evaluation over the changed cone.
    severe_drift: bool,
}

impl Optimizer {
    pub fn new(cost_model: CostModel, options: GreedyOptions) -> Self {
        Optimizer {
            cost_model,
            options,
            ..Default::default()
        }
    }

    /// The session's DAG — the executable program's node ids resolve here.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Tear down into the bare DAG (the one-shot façade returns it by
    /// value).
    pub fn into_dag(self) -> Dag {
        self.dag
    }

    /// The current greedy knobs.
    pub fn options(&self) -> &GreedyOptions {
        &self.options
    }

    // ==================================================================
    // View set
    // ==================================================================

    /// Unify a view's maintenance expressions into the existing DAG and
    /// extend the subsumption derivations incrementally. Panics on an
    /// invalid expression (mirrors [`crate::api::build_dag`]); validate
    /// against the catalog first when the view comes from user input.
    pub fn add_view(&mut self, catalog: &mut Catalog, view: &ViewDef) -> EqId {
        view.expr
            .validate(catalog)
            .unwrap_or_else(|err| panic!("invalid view {}: {err}", view.name));
        let eqs_before = self.dag.eq_arena_size();
        let ops_before = self.dag.op_arena_size();
        let root = self.dag.insert_view(catalog, view.name.clone(), &view.expr);
        let pass = add_subsumption_derivations_incremental(
            &mut self.dag,
            catalog,
            &mut self.subsume_state,
            EqId(eqs_before as u32),
        );
        self.subsumption.absorb(pass);
        // Every new node needs slots; every parent of a new op gained an
        // alternative and must be re-costed.
        for id in eqs_before..self.dag.eq_arena_size() {
            self.dirty.insert(EqId(id as u32));
            self.seed_dirty.insert(EqId(id as u32));
        }
        for id in ops_before..self.dag.op_arena_size() {
            self.dirty
                .insert(self.dag.op(crate::dag::OpId(id as u32)).parent);
        }
        // The root becomes a user view: materialized, with a locator index
        // for delete-merges when the physical design has initial indices
        // (§7.1). If it (or an index on it) was a *chosen* extra before, it
        // is one no longer — the locator in particular is now *forced*, so
        // it must not sit in the revalidation set where a warm replan could
        // demote it.
        self.mark_with_consumers(root);
        self.mats.full.insert(root);
        let owned_by_root = |c: &Candidate| {
            matches!(c, Candidate::Full(e) if *e == root)
                || matches!(c, Candidate::Index(StoredRef::Mat(e), _) if *e == root)
        };
        self.warm.prior_chosen.retain(|c| !owned_by_root(c));
        self.warm.benefits.retain(|c, _| !owned_by_root(c));
        if !self.initial_indices.is_empty() {
            if let Some(first) = self.dag.eq(root).schema.ids().first() {
                self.mats.indices.insert((StoredRef::Mat(root), *first));
            }
        } else {
            // No initial indices (the Figure 5(b) setting): views start
            // bare, so a previously *chosen* index on this node is dropped
            // — the greedy phase can re-earn it as a fresh candidate.
            self.mats
                .indices
                .retain(|(t, _)| *t != StoredRef::Mat(root));
        }
        root
    }

    /// Detach a view and garbage-collect. Returns false if no view carries
    /// `name`. Surviving nodes that lost sharing get their cached benefits
    /// invalidated; persisted state referencing collected nodes is pruned.
    pub fn remove_view(&mut self, name: &str) -> bool {
        let Some(root) = self
            .dag
            .roots()
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.eq)
        else {
            return false;
        };
        // Whatever sat under this root loses sharing — collect before GC,
        // keep the survivors afterwards.
        let cone = WarmStart::stale_closure(&self.dag, [root]);
        if self.dag.remove_view(name).is_none() {
            return false;
        }
        self.benefit_stale
            .extend(cone.into_iter().filter(|e| self.dag.eq_is_live(*e)));
        let still_root = self.dag.roots().iter().any(|r| r.eq == root);
        if !still_root {
            self.mats.full.remove(&root);
            self.mats
                .indices
                .retain(|(t, _)| *t != StoredRef::Mat(root));
            self.warm.benefits.remove(&Candidate::Full(root));
            if self.dag.eq_is_live(root) {
                // Shared interior node: consumers lose the forced
                // materialization and must be re-costed.
                self.mark_with_consumers(root);
            }
        }
        self.prune_dead();
        true
    }

    /// Drop persisted state that references garbage-collected nodes.
    fn prune_dead(&mut self) {
        let dag = &self.dag;
        self.mats.full.retain(|e| dag.eq_is_live(*e));
        self.mats.diffs.retain(|(e, _)| dag.eq_is_live(*e));
        self.mats.indices.retain(|(t, _)| match t {
            StoredRef::Mat(e) => dag.eq_is_live(*e),
            StoredRef::Base(t) => dag.base_eq(*t).is_some(),
        });
        let live_cand = |c: &Candidate| match c {
            Candidate::Full(e) | Candidate::Diff(e, _) => dag.eq_is_live(*e),
            Candidate::Index(StoredRef::Mat(e), _) => dag.eq_is_live(*e),
            Candidate::Index(StoredRef::Base(t), _) => dag.base_eq(*t).is_some(),
        };
        self.warm.prior_chosen.retain(live_cand);
        self.warm.benefits.retain(|c, _| live_cand(c));
        self.dirty.retain(|e| dag.eq_is_live(*e));
        self.benefit_stale.retain(|e| dag.eq_is_live(*e));
        self.seed_dirty.retain(|e| dag.eq_is_live(*e));
        self.subsume_state.prune_dead(dag);
    }

    // ==================================================================
    // Problem parameters
    // ==================================================================

    /// Install a new update model. If only the per-table row estimates
    /// moved (same 2n numbering), the next plan refreshes properties for
    /// the dependent nodes only; a changed numbering invalidates the
    /// per-update arrays wholesale (the memo is rebuilt, the DAG is not).
    pub fn set_update_model(&mut self, updates: UpdateModel) {
        let same_numbering = self.updates.len() == updates.len()
            && self
                .updates
                .steps()
                .iter()
                .zip(updates.steps())
                .all(|(a, b)| a.table == b.table && a.kind == b.kind);
        if same_numbering {
            for (a, b) in self.updates.steps().iter().zip(updates.steps()) {
                if (a.rows - b.rows).abs() > 1e-9 * a.rows.abs().max(1.0)
                    && !self.drift_tables.contains(&a.table)
                {
                    self.drift_tables.push(a.table);
                }
            }
        } else {
            // The numbering changed: every per-update array (differential
            // properties, memo diff slots) is keyed by it and meaningless
            // now — even when the step *count* happens to match (e.g.
            // successive batches naming different table pairs). Drop the
            // persisted properties and memo so the next plan recomputes
            // them against the new numbering (the DAG itself is kept).
            self.props = None;
            self.memo = None;
            self.mats.diffs.clear();
            self.warm
                .prior_chosen
                .retain(|c| !matches!(c, Candidate::Diff(_, _)));
            self.warm
                .benefits
                .retain(|c, _| !matches!(c, Candidate::Diff(_, _)));
        }
        self.updates = updates;
    }

    /// Install the pre-existing (PK) index set. Differences against the
    /// previous set adjust the materialized-set state and dirty the
    /// affected relations' consumers. Following §7.1, user views carry a
    /// locator index exactly when any initial index exists.
    pub fn set_initial_indices(&mut self, indices: Vec<(TableId, AttrId)>) {
        let old: HashSet<(TableId, AttrId)> = self.initial_indices.iter().copied().collect();
        let new: HashSet<(TableId, AttrId)> = indices.iter().copied().collect();
        for &(t, a) in old.difference(&new) {
            self.mats.indices.remove(&(StoredRef::Base(t), a));
            if let Some(e) = self.dag.base_eq(t) {
                self.mark_with_consumers(e);
            }
        }
        for &(t, a) in new.difference(&old) {
            self.mats.indices.insert((StoredRef::Base(t), a));
            if let Some(e) = self.dag.base_eq(t) {
                self.mark_with_consumers(e);
            }
        }
        let had = !self.initial_indices.is_empty();
        let has = !indices.is_empty();
        if had != has {
            let roots: Vec<EqId> = self.dag.roots().iter().map(|r| r.eq).collect();
            for root in roots {
                let Some(&first) = self.dag.eq(root).schema.ids().first() else {
                    continue;
                };
                if has {
                    self.mats.indices.insert((StoredRef::Mat(root), first));
                } else {
                    self.mats.indices.remove(&(StoredRef::Mat(root), first));
                }
                self.mark_with_consumers(root);
            }
        }
        self.initial_indices = indices;
    }

    pub fn set_options(&mut self, options: GreedyOptions) {
        self.options = options;
    }

    pub fn set_cost_model(&mut self, cost_model: CostModel) {
        self.cost_model = cost_model;
    }

    /// Mark a node and its direct consumers for memo recomputation (used
    /// when physical-design state changed outside the engine's own
    /// toggles).
    fn mark_with_consumers(&mut self, e: EqId) {
        self.dirty.insert(e);
        self.seed_dirty.insert(e);
        let parents: Vec<EqId> = self
            .dag
            .eq(e)
            .parents
            .iter()
            .map(|&op| self.dag.op(op).parent)
            .collect();
        self.dirty.extend(parents);
    }

    // ==================================================================
    // Planning
    // ==================================================================

    /// Produce a maintenance plan for the current view set. The first call
    /// is a cold build; later calls reuse the persisted DAG, properties,
    /// memo, and benefit cache, paying only for what changed.
    pub fn plan(&mut self, catalog: &mut Catalog) -> PlanOutcome {
        let start = Instant::now();
        // Catalog statistics drift: base tables whose row counts moved
        // since the persisted properties were computed count as drifted
        // even when the update model itself is unchanged.
        for &t in self.dag.base_tables() {
            let rows = catalog.table(t).stats.rows;
            let Some(prev) = self.last_base_rows.get(&t).copied() else {
                continue;
            };
            let delta = (prev - rows).abs();
            if delta > 1e-9 * prev.abs().max(1.0) && !self.drift_tables.contains(&t) {
                self.drift_tables.push(t);
            }
            if delta > 0.1 * prev.abs().max(1.0) {
                self.severe_drift = true;
            }
        }
        let structural_dirty: HashSet<EqId> = self
            .dirty
            .iter()
            .copied()
            .filter(|e| self.dag.eq_is_live(*e))
            .collect();
        let cold = self.memo.is_none() || self.props.is_none();
        let (mut engine, mode, slot_changed) = if cold {
            let engine = CostEngine::new(
                &self.dag,
                catalog,
                &self.updates,
                self.cost_model,
                self.mats.clone(),
            );
            (engine, PlanMode::Cold, Vec::new())
        } else {
            let mut props = self.props.take().expect("checked");
            let stat_changed = props.refresh(
                &self.dag,
                catalog,
                &self.updates,
                &self.drift_tables,
                &structural_dirty,
            );
            if std::env::var_os("MVMQO_SESSION_TRACE").is_some() {
                eprintln!(
                    "session refresh: {:?} ({} stat-changed)",
                    start.elapsed(),
                    stat_changed.len()
                );
            }
            let mut memo_dirty = structural_dirty.clone();
            memo_dirty.extend(stat_changed);
            let (engine, slot_changed) = CostEngine::resume(
                &self.dag,
                catalog,
                &self.updates,
                self.cost_model,
                self.mats.clone(),
                props,
                self.memo.take().expect("checked"),
                &memo_dirty,
            );
            (engine, PlanMode::Incremental, slot_changed)
        };

        let mut warm = std::mem::take(&mut self.warm);
        warm.stale = match mode {
            PlanMode::Cold => None,
            PlanMode::Incremental => {
                let mut seeds: HashSet<EqId> = self
                    .seed_dirty
                    .drain()
                    .filter(|e| self.dag.eq_is_live(*e))
                    .collect();
                seeds.extend(self.benefit_stale.drain());
                if self.drift_tables.is_empty() || self.severe_drift {
                    // No drift (every remaining benefit shift shows up as
                    // a slot-value change somewhere above the candidate) —
                    // or drift too large for the cached-benefit
                    // approximation to stay honest: re-cost the changed
                    // cone.
                    seeds.extend(slot_changed);
                }
                // With bounded drift, slot changes blanket the dependent
                // subgraph; feeding them in would re-evaluate every
                // candidate. The cached benefits stand in as heap seeds
                // instead — the lazy loop re-evaluates a candidate before
                // committing it, and the prior selection is revalidated
                // with fresh trials (see the module docs for the accepted
                // approximation).
                Some(WarmStart::stale_closure(&self.dag, seeds))
            }
        };

        let t_setup = start.elapsed();
        let greedy = run_greedy_warm(&mut engine, &self.options, &mut warm);
        let t_greedy = start.elapsed();
        let program = extract_program(&engine);
        let report = summarize(
            &self.dag,
            &engine,
            &greedy,
            self.subsumption,
            program,
            start,
        );
        if std::env::var_os("MVMQO_SESSION_TRACE").is_some() {
            eprintln!(
                "session plan [{mode}]: setup {:?}, greedy {:?} ({} benefit evals), extract {:?}",
                t_setup,
                t_greedy - t_setup,
                greedy.benefit_evaluations,
                start.elapsed() - t_greedy
            );
        }
        let (mats, props, memo) = engine.into_memo();
        self.mats = mats;
        self.props = Some(props);
        self.memo = Some(memo);
        self.warm = warm;
        self.dirty.clear();
        self.benefit_stale.clear();
        self.seed_dirty.clear();
        self.drift_tables.clear();
        self.severe_drift = false;
        self.last_base_rows = self
            .dag
            .base_tables()
            .iter()
            .map(|&t| (t, catalog.table(t).stats.rows))
            .collect();
        PlanOutcome { report, mode }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{plan_maintenance, MaintenanceProblem};
    use mvmqo_relalg::catalog::ColumnSpec;
    use mvmqo_relalg::expr::{Predicate, ScalarExpr};
    use mvmqo_relalg::logical::LogicalExpr;
    use mvmqo_relalg::types::DataType;

    struct Fixture {
        catalog: Catalog,
        views: Vec<ViewDef>,
        tables: Vec<TableId>,
    }

    /// Three views over a/b/c/d with the shared B⋈C subexpression.
    fn fixture() -> Fixture {
        let mut c = Catalog::new();
        let a = c.add_table(
            "a",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("x", DataType::Int, 50.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            100_000.0,
            &["id"],
        );
        let b = c.add_table(
            "b",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("a_id", DataType::Int, 100_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            500_000.0,
            &["id"],
        );
        let cc = c.add_table(
            "c",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 500_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            2_000_000.0,
            &["id"],
        );
        let d = c.add_table(
            "d",
            vec![
                ColumnSpec::key("id", DataType::Int),
                ColumnSpec::with_distinct("b_id", DataType::Int, 500_000.0),
                ColumnSpec::with_distinct("pad", DataType::Str, 1000.0),
            ],
            750_000.0,
            &["id"],
        );
        let a_id = c.table(a).attr("id");
        let b_aid = c.table(b).attr("a_id");
        let b_id = c.table(b).attr("id");
        let c_bid = c.table(cc).attr("b_id");
        let d_bid = c.table(d).attr("b_id");
        let bc = LogicalExpr::join(
            LogicalExpr::scan(b),
            LogicalExpr::scan(cc),
            Predicate::from_expr(ScalarExpr::col_eq_col(b_id, c_bid)),
        );
        let v1 = ViewDef::new(
            "v1",
            LogicalExpr::Join {
                left: LogicalExpr::scan(a),
                right: bc.clone(),
                predicate: Predicate::from_expr(ScalarExpr::col_eq_col(a_id, b_aid)),
            }
            .into(),
        );
        let v2 = ViewDef::new(
            "v2",
            LogicalExpr::Join {
                left: bc.clone(),
                right: LogicalExpr::scan(d),
                predicate: Predicate::from_expr(ScalarExpr::col_eq_col(b_id, d_bid)),
            }
            .into(),
        );
        let v3 = ViewDef::new("v3", bc);
        Fixture {
            catalog: c,
            views: vec![v1, v2, v3],
            tables: vec![a, b, cc, d],
        }
    }

    fn pk_indices(f: &Fixture) -> Vec<(TableId, AttrId)> {
        f.tables
            .iter()
            .map(|t| (*t, f.catalog.table(*t).primary_key[0]))
            .collect()
    }

    fn cold_cost(f: &Fixture, views: &[ViewDef], percent: f64) -> f64 {
        let mut catalog = f.catalog.clone();
        let updates =
            UpdateModel::percentage(f.tables.clone(), percent, |t| catalog.table(t).stats.rows);
        let problem = MaintenanceProblem::new(views.to_vec(), updates).with_pk_indices(&catalog);
        plan_maintenance(&mut catalog, &problem).report.total_cost
    }

    fn session_with(
        f: &Fixture,
        catalog: &mut Catalog,
        views: &[ViewDef],
        percent: f64,
    ) -> Optimizer {
        let mut s = Optimizer::new(CostModel::default(), GreedyOptions::default());
        s.set_initial_indices(pk_indices(f));
        s.set_update_model(UpdateModel::percentage(f.tables.clone(), percent, |t| {
            catalog.table(t).stats.rows
        }));
        for v in views {
            s.add_view(catalog, v);
        }
        s
    }

    #[test]
    fn first_plan_is_cold_then_incremental() {
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..1], 5.0);
        assert_eq!(s.plan(&mut catalog).mode, PlanMode::Cold);
        s.add_view(&mut catalog, &f.views[1]);
        assert_eq!(s.plan(&mut catalog).mode, PlanMode::Incremental);
    }

    #[test]
    fn incremental_add_view_matches_cold_plan() {
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..2], 5.0);
        let _ = s.plan(&mut catalog);
        s.add_view(&mut catalog, &f.views[2]);
        let warm = s.plan(&mut catalog);
        assert_eq!(warm.mode, PlanMode::Incremental);
        let cold = cold_cost(&f, &f.views, 5.0);
        assert!(
            (warm.report.total_cost - cold).abs() <= 0.01 * cold,
            "incremental {} vs cold {}",
            warm.report.total_cost,
            cold
        );
        assert_eq!(warm.report.program.views.len(), 3);
    }

    #[test]
    fn add_then_remove_view_matches_never_added() {
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..2], 5.0);
        let base = s.plan(&mut catalog);
        s.add_view(&mut catalog, &f.views[2]);
        let _ = s.plan(&mut catalog);
        assert!(s.remove_view("v3"));
        assert!(!s.remove_view("v3"));
        let back = s.plan(&mut catalog);
        assert_eq!(back.mode, PlanMode::Incremental);
        assert!(
            (back.report.total_cost - base.report.total_cost).abs()
                <= 0.01 * base.report.total_cost,
            "after add+remove {} vs never-added {}",
            back.report.total_cost,
            base.report.total_cost
        );
        assert_eq!(back.report.program.views.len(), 2);
    }

    #[test]
    fn drift_replan_matches_cold_plan() {
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..2], 5.0);
        let _ = s.plan(&mut catalog);
        // Same numbering, shifted row estimates: incremental restat.
        s.set_update_model(UpdateModel::percentage(f.tables.clone(), 8.0, |t| {
            catalog.table(t).stats.rows
        }));
        let warm = s.plan(&mut catalog);
        assert_eq!(warm.mode, PlanMode::Incremental);
        let cold = cold_cost(&f, &f.views[..2], 8.0);
        assert!(
            (warm.report.total_cost - cold).abs() <= 0.01 * cold,
            "drift incremental {} vs cold {}",
            warm.report.total_cost,
            cold
        );
    }

    #[test]
    fn update_numbering_change_still_plans_correctly() {
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..2], 5.0);
        let _ = s.plan(&mut catalog);
        // Drop table d from the workload: different 2n numbering.
        let tables = vec![f.tables[0], f.tables[1], f.tables[2]];
        s.set_update_model(UpdateModel::percentage(tables.clone(), 5.0, |t| {
            catalog.table(t).stats.rows
        }));
        let warm = s.plan(&mut catalog);
        let mut catalog2 = f.catalog.clone();
        let updates = UpdateModel::percentage(tables, 5.0, |t| catalog2.table(t).stats.rows);
        let problem =
            MaintenanceProblem::new(f.views[..2].to_vec(), updates).with_pk_indices(&catalog2);
        let cold = plan_maintenance(&mut catalog2, &problem).report.total_cost;
        assert!(
            (warm.report.total_cost - cold).abs() <= 0.01 * cold,
            "structural incremental {} vs cold {}",
            warm.report.total_cost,
            cold
        );
    }

    #[test]
    fn same_length_numbering_change_rebuilds_per_update_state() {
        // Regression: a new update model naming *different tables* with the
        // same step count must not be treated as pure drift — every
        // per-update array is keyed by the numbering.
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..2], 5.0);
        // Base model: updates on a and b only (4 steps).
        s.set_update_model(UpdateModel::percentage(
            vec![f.tables[0], f.tables[1]],
            5.0,
            |t| catalog.table(t).stats.rows,
        ));
        let _ = s.plan(&mut catalog);
        // Same step count, different tables: c and d.
        let new_tables = vec![f.tables[2], f.tables[3]];
        s.set_update_model(UpdateModel::percentage(new_tables.clone(), 5.0, |t| {
            catalog.table(t).stats.rows
        }));
        let warm = s.plan(&mut catalog);
        let mut catalog2 = f.catalog.clone();
        let updates = UpdateModel::percentage(new_tables, 5.0, |t| catalog2.table(t).stats.rows);
        let problem =
            MaintenanceProblem::new(f.views[..2].to_vec(), updates).with_pk_indices(&catalog2);
        let cold = plan_maintenance(&mut catalog2, &problem).report.total_cost;
        assert!(
            (warm.report.total_cost - cold).abs() <= 0.01 * cold,
            "numbering change: incremental {} vs cold {}",
            warm.report.total_cost,
            cold
        );
    }

    #[test]
    fn catalog_stats_drift_is_picked_up_without_update_model_change() {
        // Regression: growing base-table row counts between plans (what the
        // warehouse's stats fold does) must refresh the persisted
        // properties even when the update model is bit-identical.
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = session_with(&f, &mut catalog, &f.views[..2], 5.0);
        let updates =
            UpdateModel::percentage(f.tables.clone(), 5.0, |t| catalog.table(t).stats.rows);
        let _ = s.plan(&mut catalog);
        // Table b doubles; the update model stays the same.
        catalog.set_row_count(f.tables[1], 1_000_000.0);
        let warm = s.plan(&mut catalog);
        assert_eq!(warm.mode, PlanMode::Incremental);
        let mut catalog2 = f.catalog.clone();
        catalog2.set_row_count(f.tables[1], 1_000_000.0);
        let problem =
            MaintenanceProblem::new(f.views[..2].to_vec(), updates).with_pk_indices(&catalog2);
        let cold = plan_maintenance(&mut catalog2, &problem).report.total_cost;
        assert!(
            (warm.report.total_cost - cold).abs() <= 0.01 * cold,
            "catalog drift: incremental {} vs cold {}",
            warm.report.total_cost,
            cold
        );
    }

    #[test]
    fn audit_mode_validates_incremental_updates() {
        let f = fixture();
        let mut catalog = f.catalog.clone();
        let mut s = Optimizer::new(
            CostModel::default(),
            GreedyOptions {
                audit_incremental: true,
                ..Default::default()
            },
        );
        s.set_initial_indices(pk_indices(&f));
        s.set_update_model(UpdateModel::percentage(f.tables.clone(), 5.0, |t| {
            catalog.table(t).stats.rows
        }));
        for v in &f.views[..2] {
            s.add_view(&mut catalog, v);
        }
        let out = s.plan(&mut catalog);
        assert!(out.report.total_cost.is_finite());
    }
}
