//! Quickstart: define two views over a small TPC-D instance, let the
//! optimizer pick extra materializations and indices, execute one refresh
//! cycle, and check the result against recomputation.
//!
//! ```text
//! cargo run -p mvmqo-examples --bin quickstart
//! ```

use mvmqo_core::api::MaintenanceProblem;
use mvmqo_core::update::UpdateModel;
use mvmqo_exec::{eval_logical, execute_program, index_plan_from_report};
use mvmqo_relalg::tuple::bag_eq;
use mvmqo_tpcd::{generate_database, generate_updates, tpcd_catalog};

fn main() {
    // 1. A small TPC-D instance (~1 MB) with real data.
    let mut tpcd = tpcd_catalog(0.002);
    let mut db = generate_database(&tpcd, 42);

    // 2. Two views that share lineitem ⋈ orders ⋈ customer.
    let views = mvmqo_tpcd::five_join_views(&tpcd)
        .into_iter()
        .take(2)
        .collect::<Vec<_>>();
    for v in &views {
        println!("view {}:\n{}", v.name, v.expr);
    }

    // 3. A 10% update cycle (10% inserts + 5% deletes per relation, §7.1).
    let deltas = generate_updates(&tpcd, &db, 10.0, 7).expect("tpcd tables loaded");
    let updates = UpdateModel::new(deltas.tables().map(|t| {
        let b = deltas.get(t).unwrap();
        (t, b.inserts.len() as f64, b.deletes.len() as f64)
    }));

    // 4. Optimize: greedy selection of extra views/indices + plans.
    let problem = MaintenanceProblem::new(views.clone(), updates).with_pk_indices(&tpcd.catalog);
    let initial_indices = problem.initial_indices.clone();
    let planned = mvmqo_core::api::plan_maintenance(&mut tpcd.catalog, &problem);
    let (dag, report) = (planned.dag, planned.report);
    println!(
        "estimated maintenance cost: {:.2}s (NoGreedy baseline {:.2}s)",
        report.total_cost, report.nogreedy_cost
    );
    for m in &report.chosen_mats {
        println!("  chose: {} [{:?}]", m.description, m.strategy);
    }
    for i in &report.chosen_indices {
        println!("  chose: index on {:?}({})", i.target, i.attr);
    }
    for (name, strategy, cost) in &report.view_strategies {
        println!("  view {name}: {strategy:?}, {cost:.2}s");
    }

    // 5. Execute the maintenance program.
    let index_plan = index_plan_from_report(&initial_indices, &report);
    let exec = execute_program(
        &dag,
        &tpcd.catalog,
        problem.cost_model,
        &mut db,
        &deltas,
        &report.program,
        &index_plan,
    )
    .expect("epoch execution");
    println!(
        "executed: setup {:.2}s, maintenance {:.2}s (simulated I/O model)",
        exec.setup_seconds, exec.maintenance_seconds
    );

    // 6. Verify against recomputation on the post-update database.
    for v in &views {
        let expected = eval_logical(&v.expr, &tpcd.catalog, &db);
        let root = mvmqo_exec::view_root(&report.program, &v.name).unwrap();
        let expected = mvmqo_exec::align_rows(
            expected,
            &v.expr.schema(&tpcd.catalog),
            &dag.eq(root).schema,
        );
        let got = exec.view_rows.get(&v.name).unwrap();
        assert!(bag_eq(got, &expected), "view {} diverged!", v.name);
        println!(
            "  view {}: {} rows, matches recomputation ✓",
            v.name,
            got.len()
        );
    }
}
