//! Continuous warehouse refresh: the paper's headline scenario (§1), run as
//! a *living* system instead of a one-shot batch.
//!
//! Ten materialized views over TPC-D are registered with the warehouse
//! engine; update batches then stream in epoch after epoch (a bursty
//! profile — small trickle loads with a periodic spike). Each epoch
//! executes the optimizer-chosen shared maintenance program, reusing the
//! permanent materializations and indices persisted from earlier epochs;
//! the adaptive policy re-runs the MQO selection when the ingested-delta
//! volume or the realized cost drifts from the plan's assumptions.
//!
//! ```text
//! cargo run -p mvmqo-examples --bin warehouse_refresh [epochs] [update_percent]
//! ```

use mvmqo_tpcd::{epoch_updates, generate_database, ten_views, tpcd_catalog, DriverProfile};
use mvmqo_warehouse::{ReoptPolicy, Warehouse};

fn main() {
    let epochs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let percent: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    println!("continuous refresh: {epochs} epochs, ~{percent}% updates (ten TPC-D views)\n");

    // Generator-side TPC-D handles and the engine's own catalog copy
    // (tpcd_catalog is deterministic, so ids line up).
    let tpcd = tpcd_catalog(0.002);
    let db = generate_database(&tpcd, 11);
    let views = ten_views(&tpcd);
    let mut wh = Warehouse::new(tpcd_catalog(0.002).catalog, db).with_policy(ReoptPolicy {
        delta_fraction: 0.10,
        cost_ratio: 10.0,
    });

    for v in views {
        let name = v.name.clone();
        let report = wh.register_view(v).expect("valid TPC-D view");
        println!(
            "registered {name:<18} → plan cost {:.2}s, {} extra mats",
            report.total_cost,
            report.chosen_mats.len()
        );
    }
    println!();

    let profile = DriverProfile::Bursty {
        base: percent,
        spike: percent * 4.0,
        period: 3,
    };
    for epoch in 0..epochs {
        let deltas =
            epoch_updates(&tpcd, wh.database(), profile, epoch, 23).expect("tpcd tables loaded");
        let tables: Vec<_> = deltas.tables().collect();
        for t in tables {
            let batch = deltas.get(t).unwrap().clone();
            wh.ingest(t, batch).expect("valid generated batch");
        }
        let r = wh.run_epoch().expect("epoch over registered views");
        println!(
            "epoch {}: {:>6} tuples in, executed {:>8.2}s (estimate {:>8.2}s), setup rebuilds {}{}",
            r.epoch,
            r.ingested_tuples,
            r.executed_seconds,
            r.estimated_cost,
            r.setup_builds,
            match r.replanned {
                Some(t) => format!("  [re-optimized: {t}]"),
                None => String::new(),
            }
        );
    }

    println!("\n{}", wh.explain());
    for v in wh.views().to_vec() {
        let ok = wh.verify(&v.name).expect("registered view");
        assert!(ok, "view {} diverged from recomputation", v.name);
    }
    println!("all views verified against recomputation after {epochs} epochs");
}
