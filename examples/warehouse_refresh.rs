//! Warehouse nightly refresh: the paper's headline scenario (§1).
//!
//! Ten materialized views over TPC-D; a nightly batch of updates arrives;
//! the maintenance window is shrinking. Compare the refresh under the
//! Greedy optimizer (shared subexpressions temporarily materialized, extra
//! permanent views/indices selected) against the NoGreedy baseline
//! (per-view choice of recompute vs incremental only), both as optimizer
//! estimates and as executed (simulated-I/O) costs.
//!
//! ```text
//! cargo run -p mvmqo-examples --bin warehouse_refresh [update_percent]
//! ```

use mvmqo_core::api::{optimize, MaintenanceProblem};
use mvmqo_core::opt::{GreedyOptions, Mode};
use mvmqo_core::update::UpdateModel;
use mvmqo_exec::{execute_program, index_plan_from_report};
use mvmqo_tpcd::{generate_database, generate_updates, ten_views, tpcd_catalog};

fn main() {
    let percent: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    println!("nightly refresh at {percent}% updates (ten TPC-D views)\n");

    let mut results = Vec::new();
    for mode in [Mode::Greedy, Mode::NoGreedy] {
        let mut tpcd = tpcd_catalog(0.002);
        let mut db = generate_database(&tpcd, 11);
        let views = ten_views(&tpcd);
        let deltas = generate_updates(&tpcd, &db, percent, 23);
        let updates = UpdateModel::new(deltas.tables().map(|t| {
            let b = deltas.get(t).unwrap();
            (t, b.inserts.len() as f64, b.deletes.len() as f64)
        }));
        let mut problem =
            MaintenanceProblem::new(views.clone(), updates).with_pk_indices(&tpcd.catalog);
        problem.options = GreedyOptions {
            mode,
            ..Default::default()
        };
        let initial_indices = problem.initial_indices.clone();
        let report = optimize(&mut tpcd.catalog, &problem);
        let (dag, _) = mvmqo_core::api::build_dag(&mut tpcd.catalog, &views);
        let index_plan = index_plan_from_report(&initial_indices, &report);
        let exec = execute_program(
            &dag,
            &tpcd.catalog,
            problem.cost_model,
            &mut db,
            &deltas,
            &report.program,
            &index_plan,
        );
        println!("== {mode:?}");
        println!(
            "  estimated plan cost : {:>9.2}s   (optimization took {:?})",
            report.total_cost, report.optimization_time
        );
        println!(
            "  executed cost       : {:>9.2}s   ({} tuples, {} blocks, {} random pages)",
            exec.maintenance_seconds,
            exec.maintenance_meter.tuples_processed,
            exec.maintenance_meter.blocks_io,
            exec.maintenance_meter.random_pages,
        );
        println!(
            "  extra materializations: {} ({} permanent), extra indices: {}",
            report.chosen_mats.len(),
            report
                .chosen_mats
                .iter()
                .filter(|m| m.permanent)
                .count(),
            report.chosen_indices.len()
        );
        results.push((mode, report.total_cost, exec.maintenance_seconds));
        println!();
    }
    let (_, g_est, g_exec) = results[0];
    let (_, n_est, n_exec) = results[1];
    println!(
        "speedup from multi-query optimization: estimated {:.2}x, executed {:.2}x",
        n_est / g_est.max(1e-9),
        n_exec / g_exec.max(1e-9)
    );
}
