//! View advisor: use the greedy machinery as a what-to-materialize advisor.
//!
//! §6.2 of the paper notes the greedy procedure extends to workloads of
//! queries with periodic updates, with optional storage budgets ("results
//! can then be materialized in the order of benefit per unit space"). This
//! example sweeps storage budgets and shows how the recommended set and the
//! achievable maintenance cost change.
//!
//! ```text
//! cargo run -p mvmqo-examples --bin view_advisor
//! ```

use mvmqo_core::api::{optimize, optimize_workload, MaintenanceProblem, WorkloadQuery};
use mvmqo_core::opt::GreedyOptions;
use mvmqo_core::update::UpdateModel;
use mvmqo_tpcd::{five_agg_views, tpcd_catalog};

fn main() {
    println!("view/index advisor over the five-aggregate-view workload (SF 0.1)\n");
    let budgets: [(&str, Option<f64>); 4] = [
        ("unlimited", None),
        ("20000 blocks (~80 MB)", Some(20_000.0)),
        ("4000 blocks (~16 MB)", Some(4_000.0)),
        ("500 blocks (~2 MB)", Some(500.0)),
    ];
    for (label, budget) in budgets {
        let mut tpcd = tpcd_catalog(0.1);
        let views = five_agg_views(&mut tpcd);
        let tables: Vec<_> = {
            let mut t: Vec<_> = views.iter().flat_map(|v| v.expr.base_tables()).collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let updates = UpdateModel::percentage(tables, 5.0, |id| tpcd.catalog.table(id).stats.rows);
        let mut problem = MaintenanceProblem::new(views, updates).with_pk_indices(&tpcd.catalog);
        problem.options = GreedyOptions {
            space_budget_blocks: budget,
            ..Default::default()
        };
        let report = optimize(&mut tpcd.catalog, &problem);
        println!("== budget: {label}");
        println!(
            "  maintenance cost {:.1}s (baseline {:.1}s, {:.2}x)",
            report.total_cost,
            report.nogreedy_cost,
            report.nogreedy_cost / report.total_cost.max(1e-9)
        );
        for m in &report.chosen_mats {
            println!("    + {} [{:?}]", m.description, m.strategy);
        }
        for i in &report.chosen_indices {
            println!("    + index on {:?}({})", i.target, i.attr);
        }
        println!();
    }

    // §6.2's workload extension: no pre-declared views at all — a pure
    // query workload (each aggregate runs 40× per refresh cycle) plus the
    // update stream. The advisor decides what to materialize from scratch.
    println!("== pure query workload (no pre-declared views, 40× each per cycle)");
    let mut tpcd = tpcd_catalog(0.1);
    let queries: Vec<WorkloadQuery> = five_agg_views(&mut tpcd)
        .into_iter()
        .map(|q| WorkloadQuery {
            query: q,
            frequency: 40.0,
        })
        .collect();
    let tables: Vec<_> = {
        let mut t: Vec<_> = queries
            .iter()
            .flat_map(|q| q.query.expr.base_tables())
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let updates = UpdateModel::percentage(tables, 5.0, |id| tpcd.catalog.table(id).stats.rows);
    let mut problem = MaintenanceProblem::new(Vec::new(), updates);
    // No views exist yet, so attach the PK indices directly.
    problem.initial_indices = tpcd.pk_indices();
    let (report, query_cost) = optimize_workload(&mut tpcd.catalog, &problem, &queries);
    println!(
        "  query cost per cycle {:.1}s + maintenance {:.1}s (unoptimized workload: {:.1}s)",
        query_cost,
        report.total_cost - query_cost,
        report.nogreedy_cost
    );
    for m in &report.chosen_mats {
        println!("    + {} [{:?}]", m.description, m.strategy);
    }
    for i in &report.chosen_indices {
        println!("    + index on {:?}({})", i.target, i.attr);
    }
}
