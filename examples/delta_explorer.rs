//! Delta explorer: inspect the differential plans the optimizer picks for
//! each of the 2n updates of a view (§5.2–5.3).
//!
//! Shows, per update (δ⁺/δ⁻ of each relation): the estimated delta
//! cardinality, whether the delta is provably empty (independence or the
//! §5.3 foreign-key pruning), the diffCost, and the chosen physical plan —
//! including the recompute-vs-incremental verdict for the whole view.
//!
//! ```text
//! cargo run -p mvmqo-examples --bin delta_explorer
//! ```

use mvmqo_core::cost::CostModel;
use mvmqo_core::opt::{CostEngine, MatSet, StoredRef};
use mvmqo_core::plan::extract_diff;
use mvmqo_core::update::UpdateModel;
use mvmqo_tpcd::{single_join_view, tpcd_catalog};

fn main() {
    let mut tpcd = tpcd_catalog(0.1);
    let views = single_join_view(&tpcd);
    let view = &views[0];
    println!("view {}:\n{}", view.name, view.expr);

    let (dag, _) = mvmqo_core::api::build_dag(&mut tpcd.catalog, &views);
    let root = dag.roots()[0].eq;
    let tables = view.expr.base_tables();
    let updates = UpdateModel::percentage(tables, 10.0, |id| tpcd.catalog.table(id).stats.rows);
    let mut mats = MatSet::default();
    mats.full.insert(root);
    for (t, a) in tpcd.pk_indices() {
        mats.indices.insert((StoredRef::Base(t), a));
    }
    mats.indices
        .insert((StoredRef::Mat(root), dag.eq(root).schema.ids()[0]));
    let engine = CostEngine::new(&dag, &tpcd.catalog, &updates, CostModel::default(), mats);

    println!("\nper-update differentials of the view (10% update cycle):");
    for step in updates.steps() {
        let name = &tpcd.catalog.table(step.table).name;
        let delta = engine.props.delta(root, step.id);
        print!(
            "  {} {:<9} batch {:>7.0} rows → view delta {:>9.0} rows, diffCost {:>8.2}s",
            match step.kind {
                mvmqo_storage::delta::DeltaKind::Insert => "δ+",
                mvmqo_storage::delta::DeltaKind::Delete => "δ-",
            },
            name,
            step.rows,
            delta.rows,
            engine.diffcost(root, step.id)
        );
        if engine.props.delta_is_empty(root, step.id) {
            println!("   [empty — FK pruning or independence]");
            continue;
        }
        println!();
        let plan = extract_diff(&engine, root, step.id, false);
        for line in plan.to_string().lines() {
            println!("      {line}");
        }
    }

    let recompute = engine.compcost(root) + engine.matcost_full(root);
    let maintain = engine.maintcost(root);
    println!(
        "\nrecompute: {recompute:.2}s vs incremental maintenance: {maintain:.2}s → {}",
        if maintain <= recompute {
            "maintain incrementally"
        } else {
            "recompute (§3.2.3: recomputation is always an alternative)"
        }
    );
}
